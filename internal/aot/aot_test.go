package aot

import (
	"go/format"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/loopir"
)

// testParams binds every parameter of a library program to a small value.
func testParams(p *loopir.Program, n int) map[string]int {
	params := map[string]int{}
	for _, prm := range p.Params {
		params[prm] = n
	}
	if _, ok := params["maxiter"]; ok {
		params["maxiter"] = 3
	}
	return params
}

func instance(t *testing.T, p *loopir.Program, params map[string]int) *loopir.Instance {
	t.Helper()
	in, err := loopir.NewInstance(p, params)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func sameArrays(t *testing.T, label string, want, got *loopir.Instance) {
	t.Helper()
	for name, w := range want.Arrays {
		g := got.Arrays[name]
		for i := range w.Data {
			if math.Float64bits(w.Data[i]) != math.Float64bits(g.Data[i]) {
				t.Fatalf("%s: array %q differs at %d: %v vs %v", label, name, i, w.Data[i], g.Data[i])
			}
		}
	}
}

// TestWholeBodyDifferential builds every library program's whole body as
// a native kernel and checks the result is bit-identical to both the
// tree-walking interpreter and the postfix-VM kernel.
func TestWholeBodyDifferential(t *testing.T) {
	for name, p := range loopir.Library() {
		p, params := p, testParams(p, 12)
		t.Run(name, func(t *testing.T) {
			if loopir.UsesIArr(p.Body) {
				t.Skip("data-dependent program runs interpreted, no kernels to compare")
			}
			ref := instance(t, p, params)
			if err := ref.Interpret(); err != nil {
				t.Fatal(err)
			}
			vm := instance(t, p, params)
			if err := vm.RunKernel(); err != nil {
				t.Fatal(err)
			}
			sameArrays(t, "interp vs kernel", ref, vm)

			prog, err := Build(Spec{Prog: p, Params: params, WholeBody: true, Mode: ModePlugin})
			if err != nil {
				t.Fatal(err)
			}
			native := instance(t, p, params)
			bk, err := prog.Kernels[0].Bind(native.Arrays)
			if err != nil {
				t.Fatal(err)
			}
			bk.Run(0, 0, nil)
			sameArrays(t, "interp vs aot", ref, native)
		})
	}
}

// TestExecRunnerDifferential exercises the subprocess-runner fallback on
// one program: same bit-identity requirement, no plugin machinery.
func TestExecRunnerDifferential(t *testing.T) {
	p := loopir.Library()["jacobi"]
	params := testParams(p, 10)
	ref := instance(t, p, params)
	if err := ref.Interpret(); err != nil {
		t.Fatal(err)
	}
	prog, err := Build(Spec{Prog: p, Params: params, WholeBody: true, Mode: ModeExec})
	if err != nil {
		t.Fatal(err)
	}
	defer prog.Close()
	if prog.Info.Mode != ModeExec {
		t.Fatalf("mode = %q, want exec", prog.Info.Mode)
	}
	native := instance(t, p, params)
	bk, err := prog.Kernels[0].Bind(native.Arrays)
	if err != nil {
		t.Fatal(err)
	}
	bk.Run(0, 0, nil)
	sameArrays(t, "interp vs exec-runner", ref, native)
}

// jacobiSweepRegion extracts the i-sweep of the jacobi program as a
// distributed region (the shape compile.KernelRegions produces).
func jacobiSweepRegion(t *testing.T, p *loopir.Program) Region {
	t.Helper()
	iter, ok := p.Body[0].(*loopir.Loop)
	if !ok {
		t.Fatalf("jacobi body[0] is %T", p.Body[0])
	}
	sweep, ok := iter.Body[0].(*loopir.Loop)
	if !ok {
		t.Fatalf("jacobi iter body[0] is %T", iter.Body[0])
	}
	return Region{DistVar: sweep.Var, Body: sweep.Body}
}

// TestRangeKernelParallel checks that a partition-safe region kernel run
// natively across 1, 2 and 4 workers stays bit-identical to the VM's
// sequential range kernel.
func TestRangeKernelParallel(t *testing.T) {
	p := loopir.Library()["jacobi"]
	params := testParams(p, 24)
	region := jacobiSweepRegion(t, p)

	prog, err := Build(Spec{Prog: p, Params: params, Regions: []Region{region}, Mode: ModePlugin})
	if err != nil {
		t.Fatal(err)
	}
	k := prog.Kernels[0]
	if !k.Meta.ParallelSafe {
		t.Fatalf("jacobi sweep not parallel-safe: %s", k.Meta.SeqReason)
	}
	if !k.CanParallel() {
		t.Fatal("plugin-mode partition-safe kernel should allow parallel dispatch")
	}

	vm := instance(t, p, params)
	rk, err := vm.CompileRangeKernel(region.DistVar, region.Body)
	if err != nil {
		t.Fatal(err)
	}
	n := params["n"]
	rk.Run(1, n-1, nil)

	for _, w := range []int{1, 2, 4} {
		native := instance(t, p, params)
		bk, err := k.Bind(native.Arrays)
		if err != nil {
			t.Fatal(err)
		}
		if got := bk.RunParallel(1, n-1, nil, w); got != w && w <= n-2 {
			t.Fatalf("RunParallel used %d workers, want %d", got, w)
		}
		sameArrays(t, "vm vs aot parallel", vm, native)
	}
}

// TestChainsStaySequential: a region whose writes flow through reduction
// chains must refuse native parallel dispatch (bit-identical chain replay
// is the VM's job).
func TestChainsStaySequential(t *testing.T) {
	p := loopir.Library()["jacobi-converge"]
	params := testParams(p, 12)
	// The copy-back sweep accumulates the residual through r[0] — a
	// reduction chain; the relaxation sweep before it is partition-safe.
	iter := p.Body[0].(*loopir.Loop)
	var sweep *loopir.Loop
	for _, s := range iter.Body {
		if l, ok := s.(*loopir.Loop); ok {
			sweep = l
		}
	}
	if sweep == nil {
		t.Fatal("no sweep loop in jacobi-converge")
	}
	in := instance(t, p, params)
	ek, err := in.EmitRangeKernelGo(sweep.Var, sweep.Body, "Kernel0")
	if err != nil {
		t.Fatal(err)
	}
	if !ek.HasChains {
		t.Fatalf("jacobi-converge sweep should carry a reduction chain (parallelSafe=%v seq=%q)",
			ek.ParallelSafe, ek.SeqReason)
	}
	prog, err := Build(Spec{Prog: p, Params: params, Regions: []Region{{DistVar: sweep.Var, Body: sweep.Body}}, Mode: ModePlugin})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Kernels[0].CanParallel() {
		t.Fatal("chain-bearing kernel must not claim parallel dispatch")
	}
}

// TestWarmStart measures the contractual cold/warm split: a second build
// of the same spec must hit the cache (no toolchain run) and the on-disk
// warm path — emit, hash, load — must come in under 50ms.
func TestWarmStart(t *testing.T) {
	p := loopir.Library()["sor"]
	params := testParams(p, 16)
	spec := Spec{Prog: p, Params: params, WholeBody: true, Mode: ModePlugin}

	first, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	key := first.Info.Key

	memoHit, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !memoHit.Info.Warm || !memoHit.Info.Memo {
		t.Fatalf("second build not memo-warm: %+v", memoHit.Info)
	}

	ClearMemory()
	start := time.Now()
	diskWarm, err := Build(spec)
	warmDur := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !diskWarm.Info.Warm {
		t.Fatalf("post-ClearMemory build not disk-warm: %+v", diskWarm.Info)
	}
	if diskWarm.Info.Key != key {
		t.Fatalf("key changed across builds: %s vs %s", key, diskWarm.Info.Key)
	}
	if diskWarm.Info.BuildDur != 0 {
		t.Fatalf("warm build invoked the toolchain: %+v", diskWarm.Info)
	}
	if warmDur > 50*time.Millisecond {
		t.Fatalf("warm start took %s, want < 50ms", warmDur)
	}
}

// TestCacheKeySensitivity: parameters are baked into emitted source, so
// changing them must change the key; mode changes the key too.
func TestCacheKeySensitivity(t *testing.T) {
	p := loopir.Library()["mm"]
	a, err := emitSpec(Spec{Prog: p, Params: map[string]int{"n": 8}, WholeBody: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := emitSpec(Spec{Prog: p, Params: map[string]int{"n": 9}, WholeBody: true})
	if err != nil {
		t.Fatal(err)
	}
	if cacheKey(a, ModePlugin) == cacheKey(b, ModePlugin) {
		t.Fatal("different params produced the same cache key")
	}
	if cacheKey(a, ModePlugin) == cacheKey(a, ModeExec) {
		t.Fatal("different modes produced the same cache key")
	}
}

// TestEmittedSourceFormatted: every emitted source file of every library
// program must already be gofmt-clean — generated code is readable Go,
// not just compilable Go.
func TestEmittedSourceFormatted(t *testing.T) {
	for name, p := range loopir.Library() {
		p := p
		t.Run(name, func(t *testing.T) {
			if loopir.UsesIArr(p.Body) {
				t.Skip("data-dependent program runs interpreted, nothing to emit")
			}
			e, err := emitSpec(Spec{Prog: p, Params: testParams(p, 12), WholeBody: true})
			if err != nil {
				t.Fatal(err)
			}
			for fname, content := range e.files {
				if filepath.Ext(fname) != ".go" {
					continue
				}
				formatted, err := format.Source([]byte(content))
				if err != nil {
					t.Fatalf("%s does not parse: %v", fname, err)
				}
				if string(formatted) != content {
					t.Fatalf("%s is not gofmt-clean:\n--- emitted ---\n%s\n--- gofmt ---\n%s",
						fname, content, formatted)
				}
			}
		})
	}
}

// TestEmittedSourceVets materializes each library program's emitted
// package and runs go vet over it.
func TestEmittedSourceVets(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("no go binary on PATH")
	}
	for name, p := range loopir.Library() {
		p := p
		t.Run(name, func(t *testing.T) {
			if loopir.UsesIArr(p.Body) {
				t.Skip("data-dependent program runs interpreted, nothing to emit")
			}
			e, err := emitSpec(Spec{Prog: p, Params: testParams(p, 12), WholeBody: true})
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			if err := writeSource(dir, e.files); err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command(goBin, "vet", ".")
			cmd.Dir = dir
			cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("go vet: %v\n%s", err, out)
			}
		})
	}
}
