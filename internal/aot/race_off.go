//go:build !race

package aot

const raceEnabled = false
