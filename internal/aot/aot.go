// Package aot closes the loop from compile.Plan to running native code:
// it takes the Go kernel functions emitted by internal/loopir, assembles
// them into a standalone package, builds that package with the Go
// toolchain into a -buildmode=plugin shared object (with a subprocess
// runner fallback where plugins are unavailable), and loads the result
// behind a stable NativeKernel ABI so the dlb runtime can dispatch to it
// exactly like a compiled kernel.
//
// Artifacts are cached on disk under os.UserCacheDir()/dlb-aot (override
// with DLB_AOT_CACHE), keyed by a sha256 of the emitted source, the Go
// version, GOARCH, the build mode and the race-detector state: repeat
// jobs of the same program skip the toolchain entirely and start in
// milliseconds. Concurrent builds of the same key are single-flighted
// both in-process (a memo) and across processes (a lock file).
package aot

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/loopir"
)

// Frame carries one native-kernel invocation: the distributed range
// [Lo,Hi), free-variable values in the kernel's FreeVars order, and one
// flat storage slice per array in the kernel's Arrays order.
type Frame struct {
	Lo, Hi int
	Regs   []int
	Data   [][]float64
}

// NativeKernel is the stable ABI a loaded kernel presents to the runtime.
type NativeKernel func(f *Frame)

// rawKernel is the builtin-typed signature emitted kernels export. Using
// only builtin types lets the function value cross the plugin boundary
// without named-type identity problems.
type rawKernel = func(lo, hi int, regs []int, data [][]float64)

// Region is one kernel-eligible region of a plan: the distributed loop
// variable and the loop body.
type Region struct {
	DistVar string
	Body    []loopir.Stmt
}

// Spec describes one AOT build request.
type Spec struct {
	// Prog and Params identify the program instance; array strides and
	// parameter values are baked into the emitted source, so they are part
	// of the cache key by construction.
	Prog   *loopir.Program
	Params map[string]int
	// Regions are the kernel-eligible regions to emit, one kernel per
	// region in order. A region whose body cannot be emitted (non-affine
	// subscripts) yields a nil Kernel slot instead of failing the build.
	Regions []Region
	// WholeBody emits a single kernel from Prog.Body instead of Regions
	// (benchmark use).
	WholeBody bool
	// CacheDir overrides the on-disk cache root (tests and benchmarks).
	CacheDir string
	// Mode forces "plugin" or "exec"; empty tries plugin first and falls
	// back to the subprocess runner. The DLB_AOT_MODE environment variable
	// overrides an empty Mode.
	Mode string
}

// BuildInfo records how a Program came to be, for logs and benchmarks.
type BuildInfo struct {
	// Key is the full cache key (hex sha256).
	Key string
	// Mode is "plugin" or "exec".
	Mode string
	// Warm reports that an existing artifact was loaded without invoking
	// the Go toolchain.
	Warm bool
	// Memo reports that the whole Program was served from the in-process
	// memo (implies Warm).
	Memo bool
	// Dir is the cache directory holding source and artifact.
	Dir string
	// EmitDur, BuildDur and LoadDur split the build wall time: emission +
	// hashing, toolchain invocation (zero when warm), artifact load.
	EmitDur, BuildDur, LoadDur time.Duration
	// Skipped lists region indices that could not be emitted and fell
	// back to the VM tier.
	Skipped []int
}

func (i BuildInfo) String() string {
	return fmt.Sprintf("aot: key=%s mode=%s warm=%v emit=%s build=%s load=%s",
		i.Key[:16], i.Mode, i.Warm,
		i.EmitDur.Round(time.Microsecond), i.BuildDur.Round(time.Millisecond),
		i.LoadDur.Round(time.Microsecond))
}

// Program is a built and loaded AOT artifact: one native kernel per
// requested region (nil where emission was refused).
type Program struct {
	Kernels []*Kernel
	Info    BuildInfo

	runner *runnerProc // exec mode; nil in plugin mode
}

// Close releases the subprocess runner, if any. Plugin artifacts cannot
// be unloaded; Close is a no-op for them. Programs served from the memo
// share their runner — ClearMemory closes those.
func (p *Program) Close() {
	if p.runner != nil && !p.Info.Memo {
		p.runner.close()
	}
}

// Kernel is one loaded native kernel.
type Kernel struct {
	// Meta is the emitter's description: data/regs layout, written
	// arrays, parallel-safety verdict.
	Meta *loopir.EmittedKernel

	idx        int
	fn         rawKernel // plugin mode; nil in exec mode
	prog       *Program
	writeSlots []int // Meta.Writes resolved to data[] slots
}

// Call invokes the kernel on a frame — the NativeKernel ABI.
func (k *Kernel) Call(f *Frame) {
	if k.fn != nil {
		k.fn(f.Lo, f.Hi, f.Regs, f.Data)
		return
	}
	if err := k.prog.runner.call(k.idx, f, k.writeSlots); err != nil {
		panic(fmt.Sprintf("aot: exec runner: %v", err))
	}
}

// Native returns the kernel as a NativeKernel.
func (k *Kernel) Native() NativeKernel { return k.Call }

// CanParallel reports whether one call may be fanned across goroutines on
// disjoint sub-ranges: the region must be proven partition-safe, must not
// carry reduction chains (bit-identical chain replay is the VM's job),
// and the kernel must be loaded in-process (the subprocess runner
// serializes calls).
func (k *Kernel) CanParallel() bool {
	return k.fn != nil && k.Meta.ParallelSafe && !k.Meta.HasChains
}

// BoundKernel is a Kernel bound to a concrete instance's arrays, ready to
// run with per-call free-variable bindings.
type BoundKernel struct {
	K    *Kernel
	data [][]float64
}

// Bind resolves the kernel's data slots against an instance's arrays.
func (k *Kernel) Bind(arrays map[string]*loopir.Array) (*BoundKernel, error) {
	data := make([][]float64, len(k.Meta.Arrays))
	for i, name := range k.Meta.Arrays {
		a, ok := arrays[name]
		if !ok {
			return nil, fmt.Errorf("aot: kernel %s: no array %q in instance", k.Meta.Name, name)
		}
		data[i] = a.Data
	}
	return &BoundKernel{K: k, data: data}, nil
}

func (b *BoundKernel) regs(bind map[string]int) []int {
	fv := b.K.Meta.FreeVars
	if len(fv) == 0 {
		return nil
	}
	regs := make([]int, len(fv))
	for i, name := range fv {
		regs[i] = bind[name]
	}
	return regs
}

// Run executes iterations [lo,hi) sequentially. An empty range is the
// kernel's own business: emitted range loops bail out on hi <= lo exactly
// like the VM, and whole-body kernels ignore lo/hi entirely.
func (b *BoundKernel) Run(lo, hi int, bind map[string]int) {
	b.K.Call(&Frame{Lo: lo, Hi: hi, Regs: b.regs(bind), Data: b.data})
}

// RunParallel executes [lo,hi) across up to workers goroutines using the
// same sub-range split as RangeKernel.RunParallel, and returns the worker
// count used. The caller is responsible for guard resolution (a
// range-invariant read landing inside [lo,hi) must force workers=1, as
// RangeKernel.Workers does); RunParallel itself only enforces
// CanParallel and the range width.
func (b *BoundKernel) RunParallel(lo, hi int, bind map[string]int, workers int) int {
	w := workers
	if w > hi-lo {
		w = hi - lo
	}
	if w <= 1 || !b.K.CanParallel() {
		b.Run(lo, hi, bind)
		return 1
	}
	regs := b.regs(bind)
	width := hi - lo
	var wg sync.WaitGroup
	var panicked sync.Map
	for i := 0; i < w; i++ {
		f := &Frame{
			Lo:   lo + i*width/w,
			Hi:   lo + (i+1)*width/w,
			Regs: regs,
			Data: b.data,
		}
		wg.Add(1)
		go func(i int, f *Frame) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicked.Store(i, p)
				}
			}()
			b.K.Call(f)
		}(i, f)
	}
	wg.Wait()
	panicked.Range(func(_, p interface{}) bool { panic(p) })
	return w
}
