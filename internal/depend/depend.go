// Package depend performs data-dependence analysis on loopir programs.
//
// The paper's load balancer "explicitly consider[s] application data
// dependences and loop structure"; this package supplies that knowledge:
// which loops carry dependences (forcing restricted, block-preserving work
// movement and pipelined execution), which dependences cross the distributed
// dimension outside the distributed loop (requiring boundary exchanges or
// broadcasts each outer iteration), and the six Table 1 application
// properties.
//
// Two engines are provided and cross-validated: a symbolic test for
// uniformly generated reference pairs (equal subscript coefficients, the
// classic constant-distance case), and a concrete engine that executes small
// instances of the program, records every memory access, and generalizes
// the observed dependence distance vectors over two sample sizes. Symbolic
// results are used where applicable; the concrete engine covers everything
// else (e.g. LU's non-uniform pivot references).
package depend

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/loopir"
)

// Kind classifies a dependence.
type Kind int

// Dependence kinds.
const (
	Flow   Kind = iota // write then read (true dependence)
	Anti               // read then write
	Output             // write then write
)

func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	}
	return "?"
}

// Constraint describes the possible distance of a dependence at one loop.
type Constraint struct {
	Any bool // distance varies between instances
	D   int  // fixed distance when !Any
}

func (c Constraint) String() string {
	if c.Any {
		return "*"
	}
	return fmt.Sprintf("%+d", c.D)
}

// Dep is one dependence edge between two references, attributed to the loop
// that carries it. A single reference pair may yield several Dep entries,
// one per carrying loop observed.
type Dep struct {
	Array    string
	Kind     Kind
	Carrier  string     // carrying loop variable; "" if loop-independent
	Distance Constraint // distance at the carrier loop (meaningless if Carrier == "")
	// PerLoop gives the distance constraint at every common loop of the two
	// references, aggregated over the dependence instances with this
	// carrier. The compiler uses it to ask, e.g., whether a dependence
	// carried by an outer loop relates different indices of the distributed
	// loop (which means boundary communication every outer iteration).
	PerLoop map[string]Constraint
	// CommonLoops lists the loops common to both references, outermost
	// first.
	CommonLoops []string
	// CrossOwner reports whether some instance of this dependence connects
	// iterations executed by different owners of the distributed dimension.
	// Only meaningful when the analysis ran with a DistSpec (see
	// PropertiesFor); such dependences require communication.
	CrossOwner bool
	// Src and Dst are the textual references (source executes first).
	Src, Dst loopir.Ref
	// SrcStmt and DstStmt are statement ids in program order.
	SrcStmt, DstStmt int
	Method           string // "uniform" or "concrete"
}

// At returns the distance constraint of this dependence at the given loop.
// ok is false when the loop is not common to both endpoints.
func (d Dep) At(loop string) (Constraint, bool) {
	c, ok := d.PerLoop[loop]
	return c, ok
}

func (d Dep) String() string {
	carrier := d.Carrier
	if carrier == "" {
		carrier = "independent"
	}
	parts := make([]string, 0, len(d.CommonLoops))
	for _, l := range d.CommonLoops {
		parts = append(parts, fmt.Sprintf("%s:%s", l, d.PerLoop[l]))
	}
	return fmt.Sprintf("%s dep on %q: %s -> %s carried by %s (%s)",
		d.Kind, d.Array, d.Src.String(), d.Dst.String(), carrier, strings.Join(parts, " "))
}

// LoopCtx records one enclosing loop of a reference.
type LoopCtx struct {
	Var    string
	Lo, Hi loopir.IExpr
}

// RefCtx is a reference together with its nest context.
type RefCtx struct {
	Ref    loopir.Ref
	Write  bool
	Loops  []LoopCtx // outermost first
	StmtID int
	RefIdx int // position among the statement's reads (writes use -1)
}

// Analysis holds the dependence information for one program.
type Analysis struct {
	Prog    *loopir.Program
	Refs    []RefCtx
	deps    []Dep
	samples []map[string]int
}

// Analyze runs dependence analysis. sizes optionally overrides the two
// sample parameter bindings used by the concrete engine; by default small
// values (9/6 for every size-like parameter, 3/2 for iteration counts) are
// used.
func Analyze(p *loopir.Program, sizes ...map[string]int) (*Analysis, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	a := &Analysis{Prog: p}
	a.collectRefs(p.Body, nil, &stmtCounter{})

	samples := sizes
	if len(samples) == 0 {
		samples = defaultSamples(p)
	}
	deps, err := concreteDeps(p, samples, nil)
	if err != nil {
		return nil, err
	}
	a.deps = deps
	a.samples = samples
	return a, nil
}

// DistSpec describes a data distribution: which dimension of which arrays
// is distributed, and the loop variables that scan that dimension in each
// updating loop nest (usually one; Jacobi-style programs have one per
// nest). It corresponds to the data alignment and distribution directives
// that Fortran D-style compilers take from the programmer.
type DistSpec struct {
	// Dims maps distributed array names to their distributed dimension.
	Dims map[string]int
	// Loops are the distributed loop variables, one per updating nest,
	// first is primary.
	Loops []string
}

// Primary returns the primary distributed loop variable.
func (s DistSpec) Primary() string {
	if len(s.Loops) == 0 {
		return ""
	}
	return s.Loops[0]
}

// defaultSamples picks two small parameter bindings. Parameters named like
// iteration counts get small values; everything else gets a matrix size.
func defaultSamples(p *loopir.Program) []map[string]int {
	mk := func(size, iters int) map[string]int {
		m := map[string]int{}
		for _, prm := range p.Params {
			if strings.Contains(prm, "iter") {
				m[prm] = iters
			} else {
				m[prm] = size
			}
		}
		return m
	}
	return []map[string]int{mk(9, 3), mk(6, 2)}
}

type stmtCounter struct{ n int }

func (a *Analysis) collectRefs(stmts []loopir.Stmt, loops []LoopCtx, ctr *stmtCounter) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *loopir.Loop:
			a.collectRefs(s.Body, append(loops, LoopCtx{s.Var, s.Lo, s.Hi}), ctr)
		case *loopir.Assign:
			id := ctr.n
			ctr.n++
			ri := 0
			collectReads(s.RHS, func(r loopir.Ref) {
				a.Refs = append(a.Refs, RefCtx{Ref: r, Loops: cloneLoops(loops), StmtID: id, RefIdx: ri})
				ri++
			})
			a.Refs = append(a.Refs, RefCtx{Ref: s.LHS, Write: true, Loops: cloneLoops(loops), StmtID: id, RefIdx: -1})
		case *loopir.If:
			id := ctr.n
			ctr.n++
			ri := 0
			rec := func(r loopir.Ref) {
				a.Refs = append(a.Refs, RefCtx{Ref: r, Loops: cloneLoops(loops), StmtID: id, RefIdx: ri})
				ri++
			}
			collectReads(s.Cond.L, rec)
			collectReads(s.Cond.R, rec)
			a.collectRefs(s.Then, loops, ctr)
			a.collectRefs(s.Else, loops, ctr)
		}
	}
}

func cloneLoops(loops []LoopCtx) []LoopCtx {
	return append([]LoopCtx(nil), loops...)
}

func collectReads(e loopir.Expr, fn func(loopir.Ref)) {
	switch e := e.(type) {
	case loopir.Ref:
		fn(e)
	case loopir.Bin:
		collectReads(e.L, fn)
		collectReads(e.R, fn)
	}
}

// Deps returns all dependences.
func (a *Analysis) Deps() []Dep { return a.deps }

// CarriedBy returns the dependences carried by the named loop.
func (a *Analysis) CarriedBy(loopVar string) []Dep {
	var out []Dep
	for _, d := range a.deps {
		if d.Carrier == loopVar {
			out = append(out, d)
		}
	}
	return out
}

// Writes returns the write references, in program order.
func (a *Analysis) Writes() []RefCtx {
	var out []RefCtx
	for _, r := range a.Refs {
		if r.Write {
			out = append(out, r)
		}
	}
	return out
}

// WrittenArrays returns the names of arrays that are written, sorted.
func (a *Analysis) WrittenArrays() []string {
	set := map[string]bool{}
	for _, r := range a.Refs {
		if r.Write {
			set[r.Ref.Array] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// LinearForm is an affine index expression decomposed into a constant, loop
// variable coefficients, and parameter coefficients.
type LinearForm struct {
	Const  int
	Vars   map[string]int
	Params map[string]int
}

// Linearize decomposes an index expression. Parameters of the program are
// classified by the isParam predicate; every other variable is treated as a
// loop variable. It fails on non-affine expressions.
func Linearize(e loopir.IExpr, isParam func(string) bool) (LinearForm, error) {
	switch e := e.(type) {
	case loopir.ICon:
		return LinearForm{Const: int(e)}, nil
	case loopir.IVar:
		lf := LinearForm{Vars: map[string]int{}, Params: map[string]int{}}
		if isParam(string(e)) {
			lf.Params[string(e)] = 1
		} else {
			lf.Vars[string(e)] = 1
		}
		return lf, nil
	case loopir.IBin:
		l, err := Linearize(e.L, isParam)
		if err != nil {
			return LinearForm{}, err
		}
		r, err := Linearize(e.R, isParam)
		if err != nil {
			return LinearForm{}, err
		}
		switch e.Op {
		case '+':
			return lfAdd(l, r, 1), nil
		case '-':
			return lfAdd(l, r, -1), nil
		case '*':
			if lfIsConst(l) {
				return lfScale(r, l.Const), nil
			}
			if lfIsConst(r) {
				return lfScale(l, r.Const), nil
			}
			return LinearForm{}, fmt.Errorf("non-affine index expression %s", e.String())
		}
		return LinearForm{}, fmt.Errorf("bad index op %q", string(e.Op))
	}
	return LinearForm{}, fmt.Errorf("unknown index expression %T", e)
}

func lfIsConst(l LinearForm) bool { return len(l.Vars) == 0 && len(l.Params) == 0 }

func lfAdd(l, r LinearForm, sign int) LinearForm {
	out := LinearForm{Const: l.Const + sign*r.Const, Vars: map[string]int{}, Params: map[string]int{}}
	for k, v := range l.Vars {
		out.Vars[k] += v
	}
	for k, v := range r.Vars {
		out.Vars[k] += sign * v
	}
	for k, v := range l.Params {
		out.Params[k] += v
	}
	for k, v := range r.Params {
		out.Params[k] += sign * v
	}
	lfTrim(&out)
	return out
}

func lfScale(l LinearForm, k int) LinearForm {
	out := LinearForm{Const: l.Const * k, Vars: map[string]int{}, Params: map[string]int{}}
	for name, v := range l.Vars {
		out.Vars[name] = v * k
	}
	for name, v := range l.Params {
		out.Params[name] = v * k
	}
	lfTrim(&out)
	return out
}

func lfTrim(l *LinearForm) {
	for k, v := range l.Vars {
		if v == 0 {
			delete(l.Vars, k)
		}
	}
	for k, v := range l.Params {
		if v == 0 {
			delete(l.Params, k)
		}
	}
}

func lfEqualCoeffs(a, b LinearForm) bool {
	if len(a.Vars) != len(b.Vars) || len(a.Params) != len(b.Params) {
		return false
	}
	for k, v := range a.Vars {
		if b.Vars[k] != v {
			return false
		}
	}
	for k, v := range a.Params {
		if b.Params[k] != v {
			return false
		}
	}
	return true
}

// commonLoops returns loop variables common to both contexts, outermost
// first, following the source's order (common prefixes share order anyway).
func commonLoops(a, b []LoopCtx) []string {
	inB := map[string]bool{}
	for _, l := range b {
		inB[l.Var] = true
	}
	var out []string
	for _, l := range a {
		if inB[l.Var] {
			out = append(out, l.Var)
		}
	}
	return out
}
