package depend

import (
	"testing"

	"repro/internal/loopir"
)

// Specs gives the distribution directive for each library program, playing
// the role of the Fortran D-style alignment/distribution directives the
// paper assumes the programmer provides.
func specFor(t *testing.T, name string) DistSpec {
	t.Helper()
	switch name {
	case "mm":
		return DistSpec{Dims: map[string]int{"c": 1, "b": 1}, Loops: []string{"j"}}
	case "sor":
		return DistSpec{Dims: map[string]int{"b": 0}, Loops: []string{"j"}}
	case "lu":
		return DistSpec{Dims: map[string]int{"a": 1}, Loops: []string{"j"}}
	case "jacobi":
		return DistSpec{Dims: map[string]int{"a": 0, "anew": 0}, Loops: []string{"i", "i2"}}
	case "axpy":
		return DistSpec{Dims: map[string]int{"x": 0, "y": 0}, Loops: []string{"i"}}
	case "threshold-relax":
		return DistSpec{Dims: map[string]int{"v": 0}, Loops: []string{"i"}}
	}
	t.Fatalf("no spec for %q", name)
	return DistSpec{}
}

func analyze(t *testing.T, p *loopir.Program) *Analysis {
	t.Helper()
	a, err := Analyze(p)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", p.Name, err)
	}
	return a
}

// TestTable1 reproduces Table 1 of the paper exactly: the six application
// properties for MM, SOR, and LU.
func TestTable1(t *testing.T) {
	want := map[string]Properties{
		"mm": {
			LoopCarriedDeps: false, CommOutsideLoop: false, RepeatedExecution: true,
			VaryingLoopBounds: false, IndexDependentSize: false, DataDependentSize: false,
		},
		"sor": {
			LoopCarriedDeps: true, CommOutsideLoop: true, RepeatedExecution: true,
			VaryingLoopBounds: false, IndexDependentSize: false, DataDependentSize: false,
		},
		"lu": {
			LoopCarriedDeps: false, CommOutsideLoop: true, RepeatedExecution: true,
			VaryingLoopBounds: true, IndexDependentSize: true, DataDependentSize: false,
		},
	}
	lib := loopir.Library()
	for name, w := range want {
		a := analyze(t, lib[name])
		got, err := a.PropertiesFor(specFor(t, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != w {
			t.Errorf("%s properties:\n got  %v\n want %v", name, got, w)
		}
	}
}

func TestSORDependenceStructure(t *testing.T) {
	a := analyze(t, loopir.SOR())

	// The pipeline dependence: flow carried by the distributed loop j with
	// distance +1 (b[j][i] -> b[j-1][i] read at j+1).
	foundPipelineFlow := false
	// The within-sweep anti dependence carried by j (b[j+1][i] read before
	// its write) — requires the OLD value, hence the sweep-start exchange.
	foundAntiJ := false
	for _, d := range a.CarriedBy("j") {
		if d.Kind == Flow && !d.Distance.Any && d.Distance.D == 1 {
			foundPipelineFlow = true
		}
		if d.Kind == Anti && !d.Distance.Any && d.Distance.D == 1 {
			foundAntiJ = true
		}
	}
	if !foundPipelineFlow {
		t.Error("missing flow dependence carried by j with distance +1 (pipeline)")
	}
	if !foundAntiJ {
		t.Error("missing anti dependence carried by j with distance +1")
	}

	// The row pipeline: flow carried by i with distance +1.
	foundRowFlow := false
	for _, d := range a.CarriedBy("i") {
		if d.Kind == Flow && !d.Distance.Any && d.Distance.D == 1 {
			foundRowFlow = true
		}
	}
	if !foundRowFlow {
		t.Error("missing flow dependence carried by i with distance +1")
	}

	// Sweep-to-sweep dependence with a -1 shift on j: the element consumed
	// through b[j+1][i] was written one column to the right in the previous
	// sweep. This is what forces communication outside the distributed loop.
	foundIterCross := false
	for _, d := range a.CarriedBy("iter") {
		if c, ok := d.At("j"); ok && !c.Any && c.D == -1 && d.Kind == Flow {
			foundIterCross = true
		}
	}
	if !foundIterCross {
		t.Error("missing iter-carried flow dependence with j-shift -1")
	}
}

func TestMMDependenceStructure(t *testing.T) {
	a := analyze(t, loopir.MatMul())
	if deps := a.CarriedBy("j"); len(deps) != 0 {
		t.Errorf("MM has %d dependences carried by distributed loop j: %v", len(deps), deps)
	}
	if deps := a.CarriedBy("i"); len(deps) != 0 {
		t.Errorf("MM has %d dependences carried by i: %v", len(deps), deps)
	}
	// The reduction dependence on c is carried by k with distance 1.
	foundReduction := false
	for _, d := range a.CarriedBy("k") {
		if d.Array == "c" && d.Kind == Flow && !d.Distance.Any && d.Distance.D == 1 {
			foundReduction = true
		}
	}
	if !foundReduction {
		t.Error("missing k-carried flow dependence on c (the reduction)")
	}
}

func TestLUDependenceStructure(t *testing.T) {
	a := analyze(t, loopir.LU())
	if deps := a.CarriedBy("j"); len(deps) != 0 {
		t.Errorf("LU has %d dependences carried by distributed loop j: %v", len(deps), deps)
	}
	if len(a.CarriedBy("k")) == 0 {
		t.Error("LU should have dependences carried by the outer k loop")
	}
	// The normalize->update flow is loop-independent (same k) and crosses
	// owners (pivot column read by every column owner).
	deps, err := a.DepsFor(specFor(t, "lu"))
	if err != nil {
		t.Fatal(err)
	}
	foundBroadcast := false
	for _, d := range deps {
		if d.Kind == Flow && d.Carrier == "" && d.CrossOwner {
			foundBroadcast = true
		}
	}
	if !foundBroadcast {
		t.Error("missing loop-independent cross-owner flow dependence (pivot broadcast)")
	}
}

func TestJacobiOwnership(t *testing.T) {
	a := analyze(t, loopir.Jacobi())
	deps, err := a.DepsFor(specFor(t, "jacobi"))
	if err != nil {
		t.Fatal(err)
	}
	// The copy-back (anew -> a within a sweep) is same-owner: aligned.
	// The stencil reads of a[i±1][j] cross owners across sweeps.
	crossIter, sameCopy := false, false
	for _, d := range deps {
		if d.Array == "anew" && d.Carrier == "" && !d.CrossOwner {
			sameCopy = true
		}
		if d.Array == "a" && d.Carrier == "iter" && d.CrossOwner {
			crossIter = true
		}
	}
	if !sameCopy {
		t.Error("copy-back dependence should be same-owner (aligned distribution)")
	}
	if !crossIter {
		t.Error("stencil dependence across sweeps should cross owners")
	}
	pr, err := a.PropertiesFor(specFor(t, "jacobi"))
	if err != nil {
		t.Fatal(err)
	}
	if pr.LoopCarriedDeps {
		t.Error("Jacobi sweeps carry no dependences on the distributed loops")
	}
	if !pr.CommOutsideLoop {
		t.Error("Jacobi needs boundary communication each sweep")
	}
}

func TestAxpyNoCommunication(t *testing.T) {
	a := analyze(t, loopir.Axpy())
	pr, err := a.PropertiesFor(specFor(t, "axpy"))
	if err != nil {
		t.Fatal(err)
	}
	if pr.LoopCarriedDeps || pr.CommOutsideLoop {
		t.Errorf("axpy should need no communication at all: %v", pr)
	}
	if !pr.RepeatedExecution {
		t.Error("axpy's distributed loop repeats every outer iteration")
	}
}

func TestThresholdRelaxDataDependent(t *testing.T) {
	a := analyze(t, loopir.ThresholdRelax())
	pr, err := a.PropertiesFor(specFor(t, "threshold-relax"))
	if err != nil {
		t.Fatal(err)
	}
	if !pr.DataDependentSize {
		t.Error("threshold-relax iteration size is data dependent")
	}
}

func TestUniformCheckLibrary(t *testing.T) {
	for name, p := range loopir.Library() {
		a := analyze(t, p)
		if err := UniformCheck(a); err != nil {
			t.Errorf("%s: concrete results violate symbolic equations: %v", name, err)
		}
	}
}

func TestGCDIndependent(t *testing.T) {
	p := &loopir.Program{
		Name:   "gcd",
		Params: []string{"n"},
		Arrays: []*loopir.ArrayDecl{{Name: "a", Dims: []loopir.IExpr{loopir.Iv("n")}}},
	}
	evens := loopir.Fref("a", loopir.Imul(loopir.Ic(2), loopir.Iv("i")))
	odds := loopir.Fref("a", loopir.Iadd(loopir.Imul(loopir.Ic(2), loopir.Iv("i")), loopir.Ic(1)))
	if !GCDIndependent(p, evens, odds) {
		t.Error("a[2i] and a[2i+1] should be proven independent")
	}
	self := loopir.Fref("a", loopir.Iv("i"))
	next := loopir.Fref("a", loopir.Iadd(loopir.Iv("i"), loopir.Ic(1)))
	if GCDIndependent(p, self, next) {
		t.Error("a[i] and a[i+1] must not be proven independent")
	}
	c0 := loopir.Fref("a", loopir.Ic(0))
	c1 := loopir.Fref("a", loopir.Ic(1))
	if !GCDIndependent(p, c0, c1) {
		t.Error("a[0] and a[1] should be proven independent")
	}
	if GCDIndependent(p, c0, c0) {
		t.Error("a[0] and a[0] must not be proven independent")
	}
}

func TestLinearize(t *testing.T) {
	isParam := func(s string) bool { return s == "n" }
	// 2*i + (n - 3)
	e := loopir.Iadd(loopir.Imul(loopir.Ic(2), loopir.Iv("i")), loopir.Isub(loopir.Iv("n"), loopir.Ic(3)))
	lf, err := Linearize(e, isParam)
	if err != nil {
		t.Fatal(err)
	}
	if lf.Const != -3 || lf.Vars["i"] != 2 || lf.Params["n"] != 1 {
		t.Fatalf("Linearize = %+v", lf)
	}
	// i*j is non-affine
	if _, err := Linearize(loopir.Imul(loopir.Iv("i"), loopir.Iv("j")), isParam); err == nil {
		t.Fatal("non-affine expression accepted")
	}
}

func TestDistLoopsFor(t *testing.T) {
	cases := []struct {
		prog  *loopir.Program
		array string
		dim   int
		want  []string
	}{
		{loopir.MatMul(), "c", 1, []string{"j"}},
		{loopir.SOR(), "b", 0, []string{"j"}},
		{loopir.LU(), "a", 1, []string{"j"}},
		{loopir.Jacobi(), "anew", 0, []string{"i"}},
		{loopir.Jacobi(), "a", 0, []string{"i2"}},
	}
	for _, tc := range cases {
		a := analyze(t, tc.prog)
		got := a.DistLoopsFor(tc.array, tc.dim)
		if len(got) != len(tc.want) {
			t.Errorf("%s/%s dim %d: got %v, want %v", tc.prog.Name, tc.array, tc.dim, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s/%s dim %d: got %v, want %v", tc.prog.Name, tc.array, tc.dim, got, tc.want)
			}
		}
	}
}

func TestWrittenArrays(t *testing.T) {
	a := analyze(t, loopir.Jacobi())
	got := a.WrittenArrays()
	if len(got) != 2 || got[0] != "a" || got[1] != "anew" {
		t.Fatalf("WrittenArrays = %v, want [a anew]", got)
	}
}

func TestDepStringsAreReadable(t *testing.T) {
	a := analyze(t, loopir.SOR())
	for _, d := range a.Deps() {
		if d.String() == "" {
			t.Fatal("empty dependence description")
		}
	}
}

func TestSampleSizeRobustness(t *testing.T) {
	// The same structural conclusions must hold for a different pair of
	// sample sizes.
	a1 := analyze(t, loopir.SOR())
	a2, err := Analyze(loopir.SOR(),
		map[string]int{"n": 11, "maxiter": 4},
		map[string]int{"n": 7, "maxiter": 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.CarriedBy("j")) != len(a2.CarriedBy("j")) {
		t.Errorf("j-carried dependence count differs across sample sizes: %d vs %d",
			len(a1.CarriedBy("j")), len(a2.CarriedBy("j")))
	}
}
