package depend

import (
	"fmt"
	"sort"

	"repro/internal/loopir"
)

// The concrete dependence engine executes small instances of the program,
// records every array access with its full iteration vector, pairs accesses
// to the same element into dependence instances, and generalizes the
// observed distance vectors. Running two sample sizes and merging guards
// against size-specific coincidences. For affine programs of the kind the
// paper targets this recovers exact constant distances; anything the
// symbolic engine cannot prove is still covered here.

const ownerNone = int(^uint(0) >> 1) // sentinel: access has no owner index

type access struct {
	write  bool
	stmtID int
	refIdx int
	time   int
	owner  int // distributed-dimension index of the executing statement, or ownerNone
	iter   map[string]int
}

type tracer struct {
	in        *loopir.Instance
	stmtIDs   map[loopir.Stmt]int
	log       map[string]map[int][]access // array -> flat index -> accesses in time order
	clock     int
	env       map[string]int
	ownerExpr map[int]loopir.IExpr // stmtID -> dist-dim subscript of the statement's write
}

type refKey struct {
	stmtID int
	refIdx int
}

// assignStmtIDs numbers Assign and If statements in static pre-order,
// matching Analysis.collectRefs.
func assignStmtIDs(stmts []loopir.Stmt, ids map[loopir.Stmt]int, ctr *stmtCounter) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *loopir.Loop:
			assignStmtIDs(s.Body, ids, ctr)
		case *loopir.Assign:
			ids[s] = ctr.n
			ctr.n++
		case *loopir.If:
			ids[s] = ctr.n
			ctr.n++
			assignStmtIDs(s.Then, ids, ctr)
			assignStmtIDs(s.Else, ids, ctr)
		}
	}
}

func (tr *tracer) record(arr string, flat int, write bool, stmtID, refIdx int) {
	iter := make(map[string]int, len(tr.env))
	for k, v := range tr.env {
		iter[k] = v
	}
	owner := ownerNone
	if oe, ok := tr.ownerExpr[stmtID]; ok {
		env := map[string]int{}
		for k, v := range tr.in.Params {
			env[k] = v
		}
		for k, v := range tr.env {
			env[k] = v
		}
		if v, err := tr.in.EvalIndex(oe, env); err == nil {
			owner = v
		}
	}
	byFlat := tr.log[arr]
	if byFlat == nil {
		byFlat = map[int][]access{}
		tr.log[arr] = byFlat
	}
	byFlat[flat] = append(byFlat[flat], access{write: write, stmtID: stmtID, refIdx: refIdx, time: tr.clock, owner: owner, iter: iter})
	tr.clock++
}

func (tr *tracer) flatIndex(r loopir.Ref) (int, error) {
	arr := tr.in.Arrays[r.Array]
	if arr == nil {
		return 0, fmt.Errorf("unknown array %q", r.Array)
	}
	flat := 0
	for d, ie := range r.Idx {
		env := map[string]int{}
		for k, v := range tr.in.Params {
			env[k] = v
		}
		for k, v := range tr.env {
			env[k] = v
		}
		v, err := tr.in.EvalIndex(ie, env)
		if err != nil {
			return 0, err
		}
		if v < 0 || v >= arr.Dims[d] {
			return 0, fmt.Errorf("trace: %s index %d out of range [0,%d)", r.String(), v, arr.Dims[d])
		}
		flat += v * arr.Stride[d]
	}
	return flat, nil
}

// evalRecord evaluates a data expression, recording each array read.
func (tr *tracer) evalRecord(e loopir.Expr, stmtID int, refIdx *int) (float64, error) {
	switch e := e.(type) {
	case loopir.Const:
		return float64(e), nil
	case loopir.Ref:
		flat, err := tr.flatIndex(e)
		if err != nil {
			return 0, err
		}
		tr.record(e.Array, flat, false, stmtID, *refIdx)
		*refIdx++
		return tr.in.Arrays[e.Array].Data[flat], nil
	case loopir.Bin:
		l, err := tr.evalRecord(e.L, stmtID, refIdx)
		if err != nil {
			return 0, err
		}
		r, err := tr.evalRecord(e.R, stmtID, refIdx)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		case '/':
			return l / r, nil
		}
	}
	return 0, fmt.Errorf("unknown expression %T", e)
}

// evalCondNoRecord evaluates a comparison against current data without
// logging accesses.
func (tr *tracer) evalCondNoRecord(c loopir.Cond) (bool, error) {
	env := map[string]int{}
	for k, v := range tr.in.Params {
		env[k] = v
	}
	for k, v := range tr.env {
		env[k] = v
	}
	l, err := tr.in.EvalExpr(c.L, env)
	if err != nil {
		return false, err
	}
	r, err := tr.in.EvalExpr(c.R, env)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case "<":
		return l < r, nil
	case "<=":
		return l <= r, nil
	case ">":
		return l > r, nil
	case ">=":
		return l >= r, nil
	case "==":
		return l == r, nil
	case "!=":
		return l != r, nil
	}
	return false, fmt.Errorf("bad breakif op %q", c.Op)
}

func (tr *tracer) execStmts(stmts []loopir.Stmt) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *loopir.Loop:
			env := map[string]int{}
			for k, v := range tr.in.Params {
				env[k] = v
			}
			for k, v := range tr.env {
				env[k] = v
			}
			lo, err := tr.in.EvalIndex(s.Lo, env)
			if err != nil {
				return err
			}
			hi, err := tr.in.EvalIndex(s.Hi, env)
			if err != nil {
				return err
			}
			for v := lo; v < hi; v++ {
				tr.env[s.Var] = v
				if err := tr.execStmts(s.Body); err != nil {
					return err
				}
				if s.BreakIf != nil {
					// Evaluate data-dependent termination (without
					// recording the condition's reads — it is control, not
					// dataflow the communication generator acts on).
					stop, err := tr.evalCondNoRecord(*s.BreakIf)
					if err != nil {
						return err
					}
					if stop {
						break
					}
				}
			}
			delete(tr.env, s.Var)
		case *loopir.Assign:
			id := tr.stmtIDs[s]
			ri := 0
			val, err := tr.evalRecord(s.RHS, id, &ri)
			if err != nil {
				return err
			}
			flat, err := tr.flatIndex(s.LHS)
			if err != nil {
				return err
			}
			tr.record(s.LHS.Array, flat, true, id, -1)
			tr.in.Arrays[s.LHS.Array].Data[flat] = val
		case *loopir.If:
			id := tr.stmtIDs[s]
			ri := 0
			l, err := tr.evalRecord(s.Cond.L, id, &ri)
			if err != nil {
				return err
			}
			r, err := tr.evalRecord(s.Cond.R, id, &ri)
			if err != nil {
				return err
			}
			taken := false
			switch s.Cond.Op {
			case "<":
				taken = l < r
			case "<=":
				taken = l <= r
			case ">":
				taken = l > r
			case ">=":
				taken = l >= r
			case "==":
				taken = l == r
			case "!=":
				taken = l != r
			}
			var body []loopir.Stmt
			if taken {
				body = s.Then
			} else {
				body = s.Else
			}
			if err := tr.execStmts(body); err != nil {
				return err
			}
		}
	}
	return nil
}

// depKey identifies an aggregated dependence: a reference pair, a kind, and
// a carrying loop.
type depKey struct {
	array   string
	kind    Kind
	carrier string
	src     refKey
	dst     refKey
}

type depAgg struct {
	perLoop    map[string]Constraint
	seen       bool
	srcRef     loopir.Ref
	dstRef     loopir.Ref
	common     []string
	crossOwner bool
}

// concreteDeps runs the tracer on each sample and merges the aggregated
// dependences. When spec is non-nil, every access is attributed to the
// distributed-dimension owner of its executing statement, and dependences
// connecting different owners are flagged CrossOwner.
func concreteDeps(p *loopir.Program, samples []map[string]int, spec *DistSpec) ([]Dep, error) {
	agg := map[depKey]*depAgg{}
	for _, params := range samples {
		if err := traceSample(p, params, agg, spec); err != nil {
			return nil, err
		}
	}
	keys := make([]depKey, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.array != b.array {
			return a.array < b.array
		}
		if a.src.stmtID != b.src.stmtID {
			return a.src.stmtID < b.src.stmtID
		}
		if a.src.refIdx != b.src.refIdx {
			return a.src.refIdx < b.src.refIdx
		}
		if a.dst.stmtID != b.dst.stmtID {
			return a.dst.stmtID < b.dst.stmtID
		}
		if a.dst.refIdx != b.dst.refIdx {
			return a.dst.refIdx < b.dst.refIdx
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return a.carrier < b.carrier
	})
	var deps []Dep
	for _, k := range keys {
		g := agg[k]
		d := Dep{
			Array:       k.array,
			Kind:        k.kind,
			Carrier:     k.carrier,
			PerLoop:     g.perLoop,
			CommonLoops: g.common,
			Src:         g.srcRef,
			Dst:         g.dstRef,
			SrcStmt:     k.src.stmtID,
			DstStmt:     k.dst.stmtID,
			Method:      "concrete",
		}
		if k.carrier != "" {
			d.Distance = g.perLoop[k.carrier]
		}
		d.CrossOwner = g.crossOwner
		deps = append(deps, d)
	}
	return deps, nil
}

// ownerExprs maps each statement to the expression giving the distributed-
// dimension index of its write (the owner-computes rule). If statements
// fall back to the innermost in-scope distributed loop variable, so the
// conditional is attributed to the iterations that execute it.
func ownerExprs(stmts []loopir.Stmt, ids map[loopir.Stmt]int, spec *DistSpec, inScope []string, out map[int]loopir.IExpr) {
	distLoop := map[string]bool{}
	for _, l := range spec.Loops {
		distLoop[l] = true
	}
	scopeOwner := func(scope []string) (loopir.IExpr, bool) {
		for i := len(scope) - 1; i >= 0; i-- {
			if distLoop[scope[i]] {
				return loopir.Iv(scope[i]), true
			}
		}
		return nil, false
	}
	var walk func(stmts []loopir.Stmt, scope []string)
	walk = func(stmts []loopir.Stmt, scope []string) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *loopir.Loop:
				walk(s.Body, append(scope, s.Var))
			case *loopir.Assign:
				if dim, ok := spec.Dims[s.LHS.Array]; ok && dim < len(s.LHS.Idx) {
					out[ids[s]] = s.LHS.Idx[dim]
				} else if oe, ok := scopeOwner(scope); ok {
					out[ids[s]] = oe
				}
			case *loopir.If:
				if oe, ok := scopeOwner(scope); ok {
					out[ids[s]] = oe
				}
				walk(s.Then, scope)
				walk(s.Else, scope)
			}
		}
	}
	walk(stmts, inScope)
}

func traceSample(p *loopir.Program, params map[string]int, agg map[depKey]*depAgg, spec *DistSpec) error {
	in, err := loopir.NewInstance(p, params)
	if err != nil {
		return err
	}
	ids := map[loopir.Stmt]int{}
	assignStmtIDs(p.Body, ids, &stmtCounter{})
	owners := map[int]loopir.IExpr{}
	if spec != nil {
		ownerExprs(p.Body, ids, spec, nil, owners)
	}
	tr := &tracer{
		in:        in,
		stmtIDs:   ids,
		log:       map[string]map[int][]access{},
		env:       map[string]int{},
		ownerExpr: owners,
	}
	if err := tr.execStmts(p.Body); err != nil {
		return err
	}

	// Reference contexts for loop lookup.
	a := &Analysis{Prog: p}
	a.collectRefs(p.Body, nil, &stmtCounter{})
	ctxOf := map[refKey]RefCtx{}
	for _, r := range a.Refs {
		ctxOf[refKey{r.StmtID, r.RefIdx}] = r
	}

	addInstance := func(src, dst access, kind Kind, array string) {
		sk := refKey{src.stmtID, src.refIdx}
		dk := refKey{dst.stmtID, dst.refIdx}
		sc, ok1 := ctxOf[sk]
		dc, ok2 := ctxOf[dk]
		if !ok1 || !ok2 {
			return
		}
		common := commonLoops(sc.Loops, dc.Loops)
		carrier := ""
		for _, l := range common {
			if dst.iter[l] != src.iter[l] {
				carrier = l
				break
			}
		}
		key := depKey{array: array, kind: kind, carrier: carrier, src: sk, dst: dk}
		g := agg[key]
		if g == nil {
			g = &depAgg{perLoop: map[string]Constraint{}, srcRef: sc.Ref, dstRef: dc.Ref, common: common}
			agg[key] = g
		}
		for _, l := range common {
			delta := dst.iter[l] - src.iter[l]
			if !g.seen {
				g.perLoop[l] = Constraint{D: delta}
			} else if c := g.perLoop[l]; !c.Any && c.D != delta {
				g.perLoop[l] = Constraint{Any: true}
			}
		}
		g.seen = true
		if src.owner != ownerNone && dst.owner != ownerNone && src.owner != dst.owner {
			g.crossOwner = true
		}
	}

	for array, byFlat := range tr.log {
		for _, accs := range byFlat {
			// accs is already time-ordered.
			for i, src := range accs {
				if src.write {
					// flow: src -> reads until the next write (inclusive
					// scan stops at the next write, which forms the output
					// dependence instead).
					for j := i + 1; j < len(accs); j++ {
						if accs[j].write {
							addInstance(src, accs[j], Output, array)
							break
						}
						addInstance(src, accs[j], Flow, array)
					}
				} else {
					// anti: src read -> next write.
					for j := i + 1; j < len(accs); j++ {
						if accs[j].write {
							addInstance(src, accs[j], Anti, array)
							break
						}
					}
				}
			}
		}
	}
	return nil
}
