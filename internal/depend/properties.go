package depend

import (
	"fmt"
	"strings"

	"repro/internal/loopir"
)

// Properties are the application features of Table 1 in the paper, relative
// to a chosen distributed loop. They drive every major load-balancing
// decision: restricted vs. unrestricted work movement, boundary
// communication, strip mining, run-time iteration tracking, and cost
// predictability.
type Properties struct {
	// LoopCarriedDeps: some dependence is carried by the distributed loop,
	// so the mapping of iterations to processors affects communication and
	// work movement must preserve the block distribution (Figure 1b).
	LoopCarriedDeps bool
	// CommOutsideLoop: some dependence carried outside the distributed loop
	// crosses distributed-loop indices (or connects a statement outside the
	// distributed loop), so the parallel code must communicate each outer
	// iteration (boundary exchange, pivot broadcast, ...).
	CommOutsideLoop bool
	// RepeatedExecution: the distributed loop is nested inside another
	// loop, so each distributed iteration re-touches the same data and
	// moving work moves more computation per data element.
	RepeatedExecution bool
	// VaryingLoopBounds: the distributed loop's bounds depend on outer loop
	// indices, so the load balancer must track the active iterations at run
	// time (LU's shrinking column set).
	VaryingLoopBounds bool
	// IndexDependentSize: bounds of loops inside the distributed loop
	// depend on loop indices, so iteration cost varies between invocations.
	IndexDependentSize bool
	// DataDependentSize: conditionals make per-iteration cost depend on
	// data values, so cost cannot be predicted at all.
	DataDependentSize bool
}

// yesNo renders a bool the way Table 1 does.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Row renders the properties as a Table 1 row.
func (pr Properties) Row() []string {
	return []string{
		yesNo(pr.LoopCarriedDeps),
		yesNo(pr.CommOutsideLoop),
		yesNo(pr.RepeatedExecution),
		yesNo(pr.VaryingLoopBounds),
		yesNo(pr.IndexDependentSize),
		yesNo(pr.DataDependentSize),
	}
}

// PropertyNames are the Table 1 row labels, in order.
var PropertyNames = []string{
	"loop-carried dependences",
	"communication outside loop",
	"repeated execution of loop",
	"varying loop bounds",
	"index-dependent iteration size",
	"data-dependent iteration size",
}

func (pr Properties) String() string {
	var parts []string
	for i, v := range pr.Row() {
		parts = append(parts, fmt.Sprintf("%s=%s", PropertyNames[i], v))
	}
	return strings.Join(parts, ", ")
}

// DepsFor re-runs the concrete analysis with owner attribution for the
// given distribution, so every dependence carries a CrossOwner flag telling
// whether it connects iterations executed by different owners of the
// distributed dimension.
func (a *Analysis) DepsFor(spec DistSpec) ([]Dep, error) {
	return concreteDeps(a.Prog, a.samples, &spec)
}

// PropertiesFor derives the Table 1 features for the given distribution.
// The primary distributed loop (spec.Loops[0]) provides the loop-structure
// properties; dependence properties consider every distributed loop.
func (a *Analysis) PropertiesFor(spec DistSpec) (Properties, error) {
	distLoop := spec.Primary()
	loop, outer, found := findLoop(a.Prog.Body, distLoop, nil)
	if !found {
		return Properties{}, fmt.Errorf("depend: no loop %q in program %q", distLoop, a.Prog.Name)
	}
	var pr Properties

	deps, err := a.DepsFor(spec)
	if err != nil {
		return Properties{}, err
	}
	isDistLoop := map[string]bool{}
	for _, l := range spec.Loops {
		isDistLoop[l] = true
	}
	for _, d := range deps {
		if isDistLoop[d.Carrier] {
			// Carried by the distributed loop itself: the iteration-to-
			// processor mapping determines communication (pipelining).
			pr.LoopCarriedDeps = true
		} else if d.CrossOwner {
			// Any other owner-crossing dependence forces communication
			// outside the distributed loop (boundary exchange, broadcast).
			pr.CommOutsideLoop = true
		}
	}

	pr.RepeatedExecution = len(outer) > 0

	isParam := func(name string) bool {
		for _, prm := range a.Prog.Params {
			if prm == name {
				return true
			}
		}
		return false
	}
	referencesLoopVar := func(e loopir.IExpr) bool {
		lf, err := Linearize(e, isParam)
		if err != nil {
			return true // non-affine: be conservative
		}
		return len(lf.Vars) > 0
	}
	pr.VaryingLoopBounds = referencesLoopVar(loop.Lo) || referencesLoopVar(loop.Hi)

	var scanInner func(stmts []loopir.Stmt)
	scanInner = func(stmts []loopir.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *loopir.Loop:
				if referencesLoopVar(s.Lo) || referencesLoopVar(s.Hi) {
					pr.IndexDependentSize = true
				}
				scanInner(s.Body)
			case *loopir.If:
				pr.DataDependentSize = true
				scanInner(s.Then)
				scanInner(s.Else)
			}
		}
	}
	scanInner(loop.Body)
	return pr, nil
}

// findLoop locates the loop with the given variable and returns it together
// with its enclosing loop contexts (outermost first).
func findLoop(stmts []loopir.Stmt, target string, outer []LoopCtx) (*loopir.Loop, []LoopCtx, bool) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *loopir.Loop:
			if s.Var == target {
				return s, cloneLoops(outer), true
			}
			if l, o, ok := findLoop(s.Body, target, append(outer, LoopCtx{s.Var, s.Lo, s.Hi})); ok {
				return l, o, ok
			}
		case *loopir.If:
			if l, o, ok := findLoop(s.Then, target, outer); ok {
				return l, o, ok
			}
			if l, o, ok := findLoop(s.Else, target, outer); ok {
				return l, o, ok
			}
		}
	}
	return nil, nil, false
}

// EnclosingLoops returns the loop contexts enclosing the named loop,
// outermost first.
func (a *Analysis) EnclosingLoops(loopVar string) ([]LoopCtx, error) {
	_, outer, ok := findLoop(a.Prog.Body, loopVar, nil)
	if !ok {
		return nil, fmt.Errorf("depend: no loop %q", loopVar)
	}
	return outer, nil
}

// DistLoopsFor returns the loop variables that scan dimension dim of the
// given array in write references — the loops that owner-computes
// distribution will parallelize (one per loop nest that updates the array,
// e.g. Jacobi's sweep and copy-back nests). Statements that write the array
// with a non-loop subscript in that dimension (e.g. LU's column-k
// normalization, whose distributed-dimension subscript is the outer k)
// yield no entry. The result preserves first-appearance order.
func (a *Analysis) DistLoopsFor(array string, dim int) []string {
	isParam := func(name string) bool {
		for _, prm := range a.Prog.Params {
			if prm == name {
				return true
			}
		}
		return false
	}
	scanVar := func(r RefCtx) (string, bool) {
		if !r.Write || r.Ref.Array != array || dim >= len(r.Ref.Idx) {
			return "", false
		}
		lf, err := Linearize(r.Ref.Idx[dim], isParam)
		if err != nil || len(lf.Vars) != 1 {
			return "", false
		}
		for v, c := range lf.Vars {
			if c != 1 {
				return "", false
			}
			for _, l := range r.Loops {
				if l.Var == v {
					return v, true
				}
			}
		}
		return "", false
	}

	var candidates []string
	seen := map[string]bool{}
	for _, r := range a.Refs {
		if v, ok := scanVar(r); ok && !seen[v] {
			seen[v] = true
			candidates = append(candidates, v)
		}
	}

	// Disqualify a candidate loop if its body contains a write to the
	// array scanned by a *different* variable: such a loop (LU's outer k,
	// which encloses the j-scanned update) sequences distributed work
	// rather than being the distributed loop itself.
	var found []string
	for _, v := range candidates {
		ok := true
		for _, r := range a.Refs {
			inV := false
			for _, l := range r.Loops {
				if l.Var == v {
					inV = true
				}
			}
			if !inV {
				continue
			}
			if w, has := scanVar(r); has && w != v {
				ok = false
				break
			}
		}
		if ok {
			found = append(found, v)
		}
	}
	return found
}
