package depend

import (
	"fmt"

	"repro/internal/loopir"
)

// This file implements the classic symbolic dependence machinery for
// uniformly generated reference pairs (equal subscript coefficients): the
// per-dimension distance equations and the GCD independence test. The
// concrete engine is the primary analysis (it models exactly the last-write
// pairing the communication generator needs); the symbolic engine serves as
// an independent validator — every fixed distance the concrete engine
// reports for a uniform pair must satisfy the per-dimension equations, and
// the GCD test must never prove independent a pair the concrete engine
// observed. Tests wire the two together via UniformCheck.

// pairEquation is the constraint Σ coef·Δvar = rhs derived from one
// subscript dimension of a uniformly generated pair.
type pairEquation struct {
	coef map[string]int // per common loop variable
	rhs  int            // srcConst - dstConst
}

// uniformEquations derives the per-dimension distance equations for a pair
// of references to the same array, or ok=false when the pair is not
// uniformly generated (different coefficients) or not affine.
func uniformEquations(p *loopir.Program, src, dst loopir.Ref) ([]pairEquation, bool) {
	if src.Array != dst.Array || len(src.Idx) != len(dst.Idx) {
		return nil, false
	}
	isParam := func(name string) bool {
		for _, prm := range p.Params {
			if prm == name {
				return true
			}
		}
		return false
	}
	var eqs []pairEquation
	for d := range src.Idx {
		ls, err1 := Linearize(src.Idx[d], isParam)
		ld, err2 := Linearize(dst.Idx[d], isParam)
		if err1 != nil || err2 != nil {
			return nil, false
		}
		if !lfEqualCoeffs(ls, ld) {
			return nil, false
		}
		coef := map[string]int{}
		for v, c := range ls.Vars {
			coef[v] = c
		}
		eqs = append(eqs, pairEquation{coef: coef, rhs: ls.Const - ld.Const})
	}
	return eqs, true
}

// UniformCheck validates every concrete dependence between uniformly
// generated reference pairs against the symbolic distance equations:
// for each dimension, Σ coef·Δ must equal srcConst − dstConst whenever all
// the involved loops have fixed observed distances. It returns an error
// describing the first inconsistency.
func UniformCheck(a *Analysis) error {
	for _, dep := range a.deps {
		eqs, ok := uniformEquations(a.Prog, dep.Src, dep.Dst)
		if !ok {
			continue
		}
		for _, eq := range eqs {
			sum, allFixed := 0, true
			for v, c := range eq.coef {
				cons, has := dep.PerLoop[v]
				if !has || cons.Any {
					allFixed = false
					break
				}
				sum += c * cons.D
			}
			if allFixed && sum != eq.rhs {
				return fmt.Errorf("depend: %s violates uniform equation (Σcoef·Δ = %d, want %d)", dep.String(), sum, eq.rhs)
			}
		}
	}
	return nil
}

// GCDIndependent applies the GCD test to a reference pair: it returns true
// when some dimension's equation Σ coef·iter = constDiff provably has no
// integer solution because gcd(coefs) does not divide the constant
// difference. Parameters must cancel for the test to apply; dimensions
// where they do not are skipped. A true result proves there is no
// dependence between the references.
func GCDIndependent(p *loopir.Program, a, b loopir.Ref) bool {
	if a.Array != b.Array || len(a.Idx) != len(b.Idx) {
		return false
	}
	isParam := func(name string) bool {
		for _, prm := range p.Params {
			if prm == name {
				return true
			}
		}
		return false
	}
	for d := range a.Idx {
		la, err1 := Linearize(a.Idx[d], isParam)
		lb, err2 := Linearize(b.Idx[d], isParam)
		if err1 != nil || err2 != nil {
			continue
		}
		// Parameters must cancel: same param coefficients on both sides.
		paramsEqual := len(la.Params) == len(lb.Params)
		if paramsEqual {
			for k, v := range la.Params {
				if lb.Params[k] != v {
					paramsEqual = false
					break
				}
			}
		}
		if !paramsEqual {
			continue
		}
		// Equation: Σ la.Vars·x − Σ lb.Vars·y = lb.Const − la.Const.
		g := 0
		for _, c := range la.Vars {
			g = gcd(g, abs(c))
		}
		for _, c := range lb.Vars {
			g = gcd(g, abs(c))
		}
		diff := lb.Const - la.Const
		if g == 0 {
			if diff != 0 {
				return true // constant subscripts that differ
			}
			continue
		}
		if diff%g != 0 {
			return true
		}
	}
	return false
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
