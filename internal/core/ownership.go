package core

import (
	"fmt"
	"sort"
)

// Ownership tracks which slave owns each work unit (distributed-loop
// iteration / data slice) and which units are still active. It is the
// master's authoritative "index array": the paper notes that once data can
// move at run time, processors can no longer compute data locations from
// local information, so the master maintains the global map and slaves keep
// local copies updated by the instructions they receive.
type Ownership struct {
	slaves int
	owner  []int  // unit -> owning slave
	active []bool // unit -> has remaining work
}

// NewBlockOwnership distributes units 0..units-1 across slaves in
// contiguous blocks as evenly as possible (the standard initial BLOCK
// distribution). All units start active.
func NewBlockOwnership(units, slaves int) *Ownership {
	if units < 0 || slaves <= 0 {
		panic("core: invalid ownership shape")
	}
	o := &Ownership{
		slaves: slaves,
		owner:  make([]int, units),
		active: make([]bool, units),
	}
	for u := 0; u < units; u++ {
		o.owner[u] = u * slaves / units
		o.active[u] = true
	}
	return o
}

// Clone deep-copies the ownership map.
func (o *Ownership) Clone() *Ownership {
	return &Ownership{
		slaves: o.slaves,
		owner:  append([]int(nil), o.owner...),
		active: append([]bool(nil), o.active...),
	}
}

// Slaves returns the number of slaves.
func (o *Ownership) Slaves() int { return o.slaves }

// Units returns the total number of units (active and inactive).
func (o *Ownership) Units() int { return len(o.owner) }

// OwnerOf returns the slave owning the unit.
func (o *Ownership) OwnerOf(unit int) int { return o.owner[unit] }

// IsActive reports whether the unit still has remaining work.
func (o *Ownership) IsActive(unit int) bool { return o.active[unit] }

// Deactivate marks a unit as having no remaining work (LU's completed
// columns). Inactive units keep their owner but are never moved.
func (o *Ownership) Deactivate(unit int) { o.active[unit] = false }

// ActiveCounts returns the number of active units per slave.
func (o *Ownership) ActiveCounts() []int {
	counts := make([]int, o.slaves)
	for u, s := range o.owner {
		if o.active[u] {
			counts[s]++
		}
	}
	return counts
}

// ActiveTotal returns the number of active units.
func (o *Ownership) ActiveTotal() int {
	n := 0
	for u := range o.owner {
		if o.active[u] {
			n++
		}
	}
	return n
}

// OwnedActive returns the active units owned by the slave, ascending.
func (o *Ownership) OwnedActive(slave int) []int {
	var out []int
	for u, s := range o.owner {
		if s == slave && o.active[u] {
			out = append(out, u)
		}
	}
	return out
}

// Owned returns all units owned by the slave (active or not), ascending.
func (o *Ownership) Owned(slave int) []int {
	var out []int
	for u, s := range o.owner {
		if s == slave {
			out = append(out, u)
		}
	}
	return out
}

// IsBlock reports whether the active units form contiguous per-slave blocks
// in slave order — the invariant restricted movement must preserve so that
// loop-carried dependences only cross adjacent processors.
func (o *Ownership) IsBlock() bool {
	last := -1
	for u, s := range o.owner {
		if !o.active[u] {
			continue
		}
		if s < last {
			return false
		}
		last = s
	}
	return true
}

// Apply transfers the units listed in the move to the destination slave.
// It verifies that every unit is active and currently owned by move.From.
func (o *Ownership) Apply(m Move) error {
	for _, u := range m.Units {
		if u < 0 || u >= len(o.owner) {
			return fmt.Errorf("core: move of out-of-range unit %d", u)
		}
		if !o.active[u] {
			return fmt.Errorf("core: move of inactive unit %d", u)
		}
		if o.owner[u] != m.From {
			return fmt.Errorf("core: unit %d owned by %d, not %d", u, o.owner[u], m.From)
		}
	}
	for _, u := range m.Units {
		o.owner[u] = m.To
	}
	return nil
}

// Move instructs the transfer of specific work units (and their data) from
// one slave directly to another.
type Move struct {
	From  int
	To    int
	Units []int
}

func (m Move) String() string {
	return fmt.Sprintf("move %d units %v: %d -> %d", len(m.Units), m.Units, m.From, m.To)
}

// apportion computes integer target counts proportional to rates, summing
// to total, using the largest-remainder method. Zero or negative rates get
// no work unless every rate is non-positive, in which case the split is
// even.
func apportion(total int, rates []float64) []int {
	n := len(rates)
	out := make([]int, n)
	sum := 0.0
	for _, r := range rates {
		if r > 0 {
			sum += r
		}
	}
	if sum <= 0 {
		for i := range out {
			out[i] = total / n
		}
		for i := 0; i < total%n; i++ {
			out[i]++
		}
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	assigned := 0
	rems := make([]rem, 0, n)
	for i, r := range rates {
		if r < 0 {
			r = 0
		}
		exact := float64(total) * r / sum
		base := int(exact)
		out[i] = base
		assigned += base
		rems = append(rems, rem{i, exact - float64(base)})
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for i := 0; assigned < total; i++ {
		out[rems[i%n].idx]++
		assigned++
	}
	return out
}

// movesRestricted computes adjacent-only moves that turn the current block
// distribution of active units into one matching targetCounts, preserving
// contiguity (paper Figure 1b). Moves are emitted in an order slaves can
// execute directly: leftward flows right-to-left, then rightward flows
// left-to-right, so a forwarding slave always receives pass-through units
// before sending them on.
func movesRestricted(o *Ownership, targetCounts []int) []Move {
	activeUnits := make([]int, 0, len(o.owner))
	for u := range o.owner {
		if o.active[u] {
			activeUnits = append(activeUnits, u)
		}
	}
	// Current and target prefix boundaries over the active unit sequence.
	cur := o.ActiveCounts()
	curPrefix := make([]int, o.slaves+1)
	tgtPrefix := make([]int, o.slaves+1)
	for i := 0; i < o.slaves; i++ {
		curPrefix[i+1] = curPrefix[i] + cur[i]
		tgtPrefix[i+1] = tgtPrefix[i] + targetCounts[i]
	}
	var leftward, rightward []Move
	for b := 0; b < o.slaves-1; b++ {
		c, t := curPrefix[b+1], tgtPrefix[b+1]
		switch {
		case t > c:
			// Units c..t-1 of the active sequence cross boundary b from
			// right to left.
			units := append([]int(nil), activeUnits[c:t]...)
			leftward = append(leftward, Move{From: b + 1, To: b, Units: units})
		case c > t:
			units := append([]int(nil), activeUnits[t:c]...)
			rightward = append(rightward, Move{From: b, To: b + 1, Units: units})
		}
	}
	// Leftward chains must run right-to-left so forwarders hold the data.
	for i, j := 0, len(leftward)-1; i < j; i, j = i+1, j-1 {
		leftward[i], leftward[j] = leftward[j], leftward[i]
	}
	return append(leftward, rightward...)
}

// movesUnrestricted computes direct moves from surplus slaves to deficit
// slaves (paper Figure 1a). Surplus slaves give up their highest-numbered
// active units first.
func movesUnrestricted(o *Ownership, targetCounts []int) []Move {
	cur := o.ActiveCounts()
	type entry struct {
		slave int
		n     int
	}
	var surplus, deficit []entry
	for s := 0; s < o.slaves; s++ {
		d := cur[s] - targetCounts[s]
		if d > 0 {
			surplus = append(surplus, entry{s, d})
		} else if d < 0 {
			deficit = append(deficit, entry{s, -d})
		}
	}
	var moves []Move
	di := 0
	for _, sp := range surplus {
		owned := o.OwnedActive(sp.slave)
		// Give away from the top of the owned list.
		give := owned[len(owned)-sp.n:]
		for len(give) > 0 && di < len(deficit) {
			take := len(give)
			if take > deficit[di].n {
				take = deficit[di].n
			}
			moves = append(moves, Move{
				From:  sp.slave,
				To:    deficit[di].slave,
				Units: append([]int(nil), give[:take]...),
			})
			give = give[take:]
			deficit[di].n -= take
			if deficit[di].n == 0 {
				di++
			}
		}
	}
	return moves
}
