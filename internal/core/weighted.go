package core

import "math"

// Weighted apportionment: the uniform-unit assumption retired. The legacy
// apportioning treats every active unit as equally expensive, so target
// *counts* proportional to rates equalize completion times. When a learned
// per-unit cost model is in play (internal/dlb's UnitCostModel), units carry
// relative weights and the balancer must equalize *weighted* completion
// times instead: each slot's share of the total active weight — not of the
// unit count — tracks its measured rate. The functions here compute target
// unit counts whose projected weighted shares do that, in both movement
// disciplines, and stay exactly off the legacy code paths when weights are
// absent so uniform-cost runs remain bit-identical.

// ActiveWeightTotals returns each slot's aggregate weight of active owned
// units. A nil weight vector counts units (weight 1 each).
func ActiveWeightTotals(o *Ownership, w []float64) []float64 {
	out := make([]float64, o.slaves)
	for u, s := range o.owner {
		if !o.active[u] {
			continue
		}
		if w == nil {
			out[s]++
		} else {
			out[s] += w[u]
		}
	}
	return out
}

// CompletionTimeWeighted is the projected time for the slowest slot to
// finish its weighted allocation at the given rates (rates in weight units
// per second): max over slots of weight/rate, +Inf when a slot holds weight
// but measures no rate.
func CompletionTimeWeighted(weights, rates []float64) float64 {
	worst := 0.0
	for i := range weights {
		if weights[i] <= 0 {
			continue
		}
		if rates[i] <= 0 {
			return math.Inf(1)
		}
		if t := weights[i] / rates[i]; t > worst {
			worst = t
		}
	}
	return worst
}

// weightShares converts rates into desired weight allocations summing to
// total: share_i = total * rate_i / sum(rates), dead or non-positive-rate
// slots getting zero. ok is false when no slot has a positive rate (the
// caller falls back to the even legacy split).
func weightShares(total float64, rates []float64, alive []bool) ([]float64, bool) {
	sum := 0.0
	for i, r := range rates {
		if alive != nil && !alive[i] {
			continue
		}
		if r > 0 {
			sum += r
		}
	}
	if sum <= 0 {
		return nil, false
	}
	out := make([]float64, len(rates))
	for i, r := range rates {
		if alive != nil && !alive[i] {
			continue
		}
		if r > 0 {
			out[i] = total * r / sum
		}
	}
	return out, true
}

// WeightedSplitRange splits a contiguous run of units (given by their
// weights, in unit order) into per-slot counts whose cumulative weights
// track the desired shares: unit k goes to the first slot whose cumulative
// share cutoff covers the unit's weight midpoint. This is the restricted-
// movement analogue of Apportion — the resulting counts feed the same
// prefix-boundary move generation, so contiguity is preserved. Returns the
// counts and each slot's projected weight.
func WeightedSplitRange(unitW []float64, shares []float64) (counts []int, tgtW []float64) {
	n := len(shares)
	counts = make([]int, n)
	tgtW = make([]float64, n)
	if n == 0 {
		return counts, tgtW
	}
	cut := make([]float64, n)
	c := 0.0
	for i, s := range shares {
		c += s
		cut[i] = c
	}
	i := 0
	acc := 0.0
	for _, wu := range unitW {
		mid := acc + wu/2
		for i < n-1 && mid > cut[i] {
			i++
		}
		counts[i]++
		tgtW[i] += wu
		acc += wu
	}
	return counts, tgtW
}

// WeightedPeelCounts computes per-slot target counts for unrestricted
// movement: slots over their desired weight peel their highest-numbered
// active units (exactly the units MovesUnrestricted will take) until
// dropping below the desired weight by at most half the last unit, and the
// peeled pool is dealt to under-weight slots in id order. owned lists each
// slot's active units ascending; w is the global per-unit weight vector.
func WeightedPeelCounts(owned [][]int, w []float64, shares []float64) (counts []int, tgtW []float64) {
	n := len(owned)
	counts = make([]int, n)
	tgtW = make([]float64, n)
	var pool []int
	for s := 0; s < n; s++ {
		units := owned[s]
		counts[s] = len(units)
		for _, u := range units {
			tgtW[s] += w[u]
		}
		// Peel from the top while giving the unit away brings us closer to
		// the desired weight than keeping it.
		for k := len(units) - 1; k >= 0; k-- {
			wu := w[units[k]]
			if tgtW[s]-wu/2 <= shares[s] {
				break
			}
			pool = append(pool, units[k])
			tgtW[s] -= wu
			counts[s]--
		}
	}
	// Deal the pool to deficit slots in id order; the remainder (rounding
	// slack) lands on the last slot still below its share, or the final
	// slot with a positive share.
	d := 0
	last := -1
	for i := range shares {
		if shares[i] > 0 {
			last = i
		}
	}
	for _, u := range pool {
		wu := w[u]
		for d < n && (shares[d] <= 0 || tgtW[d]+wu/2 > shares[d]) {
			d++
		}
		t := d
		if t >= n {
			t = last
			if t < 0 {
				t = n - 1
			}
		}
		counts[t]++
		tgtW[t] += wu
	}
	return counts, tgtW
}

// weightedTargets computes target unit counts for the balancer's weighted
// step: desired weight shares proportional to rates, realized by the
// prefix split (restricted) or the peel (unrestricted). Falls back to the
// legacy even apportioning when no slot measures a positive rate.
func weightedTargets(o *Ownership, rates, w []float64, alive []bool, restricted bool) (targets []int, tgtW []float64) {
	var total float64
	for u := range o.owner {
		if o.active[u] {
			total += w[u]
		}
	}
	shares, ok := weightShares(total, rates, alive)
	if !ok {
		targets = apportionAlive(o.ActiveTotal(), rates, alive)
		return targets, ActiveWeightTotals(o, w)
	}
	if restricted {
		var unitW []float64
		for u := range o.owner {
			if o.active[u] {
				unitW = append(unitW, w[u])
			}
		}
		return WeightedSplitRange(unitW, shares)
	}
	owned := make([][]int, o.slaves)
	for s := 0; s < o.slaves; s++ {
		owned[s] = o.OwnedActive(s)
	}
	return WeightedPeelCounts(owned, w, shares)
}
