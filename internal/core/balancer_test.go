package core

import (
	"testing"
	"time"
)

func TestRateFilterConvergesOnConstant(t *testing.T) {
	f := NewRateFilter(0.25, 1.0)
	var v float64
	for i := 0; i < 20; i++ {
		v = f.Update(100)
	}
	if v != 100 {
		t.Fatalf("filter did not converge to constant input: %v", v)
	}
}

func TestRateFilterDampsSpike(t *testing.T) {
	f := NewRateFilter(0.25, 1.0)
	for i := 0; i < 10; i++ {
		f.Update(100)
	}
	v := f.Update(10) // one-sample dip
	if v < 70 {
		t.Fatalf("single spike moved filter too far: %v", v)
	}
	v = f.Update(100)
	if v < 80 {
		t.Fatalf("filter did not start recovering from spike: %v", v)
	}
	v = f.Update(100)
	if v < 90 {
		t.Fatalf("filter did not recover from spike after two samples: %v", v)
	}
}

func TestRateFilterTracksTrend(t *testing.T) {
	f := NewRateFilter(0.25, 1.0)
	f.Update(100)
	// Sustained drop to 10: with trend doubling, should converge within a
	// few samples (weights 0.25, 0.5, 1.0).
	var v float64
	for i := 0; i < 4; i++ {
		v = f.Update(10)
	}
	if v > 12 {
		t.Fatalf("filter too slow on sustained trend: %v", v)
	}
}

func TestRateFilterPanicsOnBadWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad weights accepted")
		}
	}()
	NewRateFilter(0, 1)
}

func TestTargetPeriodBounds(t *testing.T) {
	q := 100 * time.Millisecond
	// Quantum bound dominates when costs are small.
	p := TargetPeriod(PeriodInputs{Quantum: q})
	if p != 500*time.Millisecond {
		t.Fatalf("period = %v, want 500ms (5 quanta)", p)
	}
	// Movement cost bound: 0.1 x 20s = 2s.
	p = TargetPeriod(PeriodInputs{Quantum: q, MoveCost: 20 * time.Second})
	if p != 2*time.Second {
		t.Fatalf("period = %v, want 2s (0.1 x move cost)", p)
	}
	// Interaction cost bound: 20 x 100ms = 2s.
	p = TargetPeriod(PeriodInputs{Quantum: q, InteractionCost: 100 * time.Millisecond})
	if p != 2*time.Second {
		t.Fatalf("period = %v, want 2s (20 x interaction)", p)
	}
	// 500ms floor with a tiny quantum.
	p = TargetPeriod(PeriodInputs{Quantum: 10 * time.Millisecond})
	if p != 500*time.Millisecond {
		t.Fatalf("period = %v, want 500ms floor", p)
	}
}

func TestHookSkip(t *testing.T) {
	if s := HookSkip(time.Second, 100*time.Millisecond, 50); s != 9 {
		t.Fatalf("skip = %d, want 9", s)
	}
	if s := HookSkip(time.Second, 2*time.Second, 50); s != 0 {
		t.Fatalf("skip = %d, want 0 (hooks rarer than period)", s)
	}
	if s := HookSkip(time.Minute, time.Millisecond, 50); s != 50 {
		t.Fatalf("skip = %d, want capped at 50", s)
	}
	if s := HookSkip(time.Second, 0, 50); s != 0 {
		t.Fatalf("skip = %d, want 0 on zero interval", s)
	}
}

func TestGrainSize(t *testing.T) {
	q := 100 * time.Millisecond
	// 1.5 quanta = 150ms at 1ms/iter -> 150 iterations.
	if g := GrainSize(time.Millisecond, q, 1.5); g != 150 {
		t.Fatalf("grain = %d, want 150", g)
	}
	// Huge iterations -> at least 1.
	if g := GrainSize(time.Second, q, 1.5); g != 1 {
		t.Fatalf("grain = %d, want 1", g)
	}
	if g := GrainSize(0, q, 1.5); g != 1 {
		t.Fatalf("grain = %d, want 1 on zero measurement", g)
	}
}

func TestMoveCostModel(t *testing.T) {
	m := NewMoveCostModel(time.Millisecond, time.Millisecond)
	if est := m.Estimate(10); est != 11*time.Millisecond {
		t.Fatalf("prior estimate = %v, want 11ms", est)
	}
	// Observations shift the per-unit cost.
	m.Observe(10, 50*time.Millisecond) // 5ms/unit observed
	est := m.Estimate(10)
	if est <= 11*time.Millisecond || est > 51*time.Millisecond {
		t.Fatalf("post-observation estimate = %v, want between prior and observed", est)
	}
	if m.Estimate(0) != 0 {
		t.Fatal("estimate for zero units should be zero")
	}
}

func mkBalancer(slaves, units int, restricted bool) *Balancer {
	cfg := DefaultConfig(slaves, restricted)
	own := NewBlockOwnership(units, slaves)
	return NewBalancer(cfg, own, NewMoveCostModel(time.Millisecond, 10*time.Microsecond))
}

func allStatuses(rates ...float64) []Status {
	out := make([]Status, len(rates))
	for i, r := range rates {
		out[i] = Status{Rate: r}
	}
	return out
}

func TestBalancerShiftsFromSlowSlave(t *testing.T) {
	b := mkBalancer(4, 100, false)
	var d Decision
	// Feed the imbalance several times so the filter converges.
	for i := 0; i < 5; i++ {
		d = b.Step(allStatuses(50, 100, 100, 100), 100)
	}
	counts := b.Ownership().ActiveCounts()
	if counts[0] >= counts[1] {
		t.Fatalf("slow slave kept as much work as fast ones: %v", counts)
	}
	// Proportional: slave 0 should get about half of the others' share.
	if counts[0] < 10 || counts[0] > 20 {
		t.Fatalf("slave 0 share = %d, want ~14 (100 * 50/350)", counts[0])
	}
	if d.Period < 500*time.Millisecond {
		t.Fatalf("period = %v, below the 500ms floor", d.Period)
	}
}

func TestBalancerBelowThresholdSuppression(t *testing.T) {
	b := mkBalancer(4, 100, false)
	// Rates within a few percent of each other: projected improvement is
	// below 10%, so no movement.
	d := b.Step(allStatuses(100, 101, 99, 100), 100)
	if len(d.Moves) != 0 {
		t.Fatalf("moved work for a %v improvement: %v", d.Improvement, d.Moves)
	}
	if d.Suppressed != "below-threshold" {
		t.Fatalf("Suppressed = %q, want below-threshold", d.Suppressed)
	}
}

func TestBalancerProfitabilityCancel(t *testing.T) {
	cfg := DefaultConfig(2, false)
	own := NewBlockOwnership(10, 2)
	// Absurdly expensive movement: profitability must cancel.
	b := NewBalancer(cfg, own, NewMoveCostModel(time.Hour, time.Hour))
	var d Decision
	for i := 0; i < 5; i++ {
		d = b.Step(allStatuses(10, 100), 10)
	}
	if len(d.Moves) != 0 {
		t.Fatalf("unprofitable move issued: %v", d.Moves)
	}
	if d.Suppressed != "not-profitable" {
		t.Fatalf("Suppressed = %q, want not-profitable", d.Suppressed)
	}
	// Ablation: disabling profitability lets the move through.
	cfg.DisableProfitability = true
	b2 := NewBalancer(cfg, NewBlockOwnership(10, 2), NewMoveCostModel(time.Hour, time.Hour))
	moved := false
	for i := 0; i < 5; i++ {
		if len(b2.Step(allStatuses(10, 100), 10).Moves) > 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("profitability ablation still suppressed movement")
	}
}

func TestBalancerRestrictedKeepsBlocks(t *testing.T) {
	b := mkBalancer(4, 64, true)
	rates := [][]float64{
		{100, 100, 100, 100},
		{20, 100, 100, 100},
		{20, 100, 100, 100},
		{150, 80, 100, 100},
		{150, 80, 100, 100},
	}
	for _, r := range rates {
		d := b.Step(allStatuses(r...), 64)
		for _, m := range d.Moves {
			if m.To-m.From != 1 && m.To-m.From != -1 {
				t.Fatalf("restricted balancer moved between non-adjacent slaves: %v", m)
			}
		}
		if !b.Ownership().IsBlock() {
			t.Fatal("block distribution violated")
		}
	}
}

func TestBalancerDeactivationShrinksWork(t *testing.T) {
	b := mkBalancer(2, 10, true)
	for u := 0; u < 6; u++ {
		b.Deactivate(u)
	}
	d := b.Step(allStatuses(100, 100), 4)
	if got := b.Ownership().ActiveTotal(); got != 4 {
		t.Fatalf("ActiveTotal = %d, want 4", got)
	}
	if len(d.Targets) != 2 || d.Targets[0]+d.Targets[1] != 4 {
		t.Fatalf("targets = %v, want to sum to 4", d.Targets)
	}
}

func TestBalancerDeadSlave(t *testing.T) {
	b := mkBalancer(2, 20, false)
	var d Decision
	for i := 0; i < 6; i++ {
		d = b.Step(allStatuses(0, 100), 20)
	}
	counts := b.Ownership().ActiveCounts()
	if counts[0] != 0 {
		t.Fatalf("dead slave still owns %d units (improvement %v)", counts[0], d.Improvement)
	}
}

func TestBalancerSkipAdaptsToShrinkingWork(t *testing.T) {
	// As LU's per-invocation work shrinks, the hook interval shrinks and
	// the skip count must grow to keep the same period (paper §4.7).
	b := mkBalancer(2, 100, true)
	dBig := b.Step(allStatuses(100, 100), 1000) // 10s of work between hooks
	dSmall := b.Step(allStatuses(100, 100), 10) // 50ms of work between hooks
	if dSmall.SkipHooks <= dBig.SkipHooks {
		t.Fatalf("skip did not grow as work shrank: big=%d small=%d", dBig.SkipHooks, dSmall.SkipHooks)
	}
}

func TestBalancerFilterAblation(t *testing.T) {
	cfg := DefaultConfig(2, false)
	cfg.DisableFilter = true
	b := NewBalancer(cfg, NewBlockOwnership(20, 2), NewMoveCostModel(time.Millisecond, time.Microsecond))
	// A single-sample spike immediately moves work when the filter is off.
	d := b.Step(allStatuses(10, 100), 20)
	if len(d.Moves) == 0 {
		t.Fatal("unfiltered balancer ignored a drastic rate difference")
	}
}

func TestBalancerStatusCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched status count accepted")
		}
	}()
	mkBalancer(3, 9, false).Step(allStatuses(1, 2), 9)
}

func TestPeriodShrinksWhenMovementCheaper(t *testing.T) {
	// A faster data plane (the binary bulk codec) makes every observed
	// movement cheaper; the move-cost EMA must pull the adaptive period
	// down with it. Costs model the measured codec gap (~4-5x).
	slow := NewMoveCostModel(time.Millisecond, 10*time.Millisecond)
	fast := NewMoveCostModel(time.Millisecond, 10*time.Millisecond)
	for i := 0; i < 8; i++ {
		slow.Observe(100, 30*time.Second)
		fast.Observe(100, 6*time.Second)
	}
	q := 10 * time.Millisecond
	pSlow := TargetPeriod(PeriodInputs{Quantum: q, MoveCost: slow.Estimate(100)})
	pFast := TargetPeriod(PeriodInputs{Quantum: q, MoveCost: fast.Estimate(100)})
	if pFast >= pSlow {
		t.Fatalf("period did not shrink with cheaper movement: fast %v, slow %v", pFast, pSlow)
	}
	if pSlow < 2*pFast {
		t.Errorf("5x cheaper movements shrank the period only from %v to %v", pSlow, pFast)
	}
	// Arbitrarily cheap movement floors at the quantum bound instead of
	// collapsing to zero.
	cheap := NewMoveCostModel(0, 0)
	cheap.Observe(100, time.Microsecond)
	if p := TargetPeriod(PeriodInputs{Quantum: q, MoveCost: cheap.Estimate(100)}); p != 500*time.Millisecond {
		t.Fatalf("period = %v, want the 500ms floor", p)
	}
}
