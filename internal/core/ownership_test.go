package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBlockOwnership(t *testing.T) {
	o := NewBlockOwnership(10, 3)
	counts := o.ActiveCounts()
	want := []int{4, 3, 3}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if !o.IsBlock() {
		t.Fatal("initial distribution is not block")
	}
	if o.OwnerOf(0) != 0 || o.OwnerOf(9) != 2 {
		t.Fatalf("unexpected owners: %d, %d", o.OwnerOf(0), o.OwnerOf(9))
	}
}

func TestDeactivate(t *testing.T) {
	o := NewBlockOwnership(6, 2)
	o.Deactivate(0)
	o.Deactivate(3)
	if o.ActiveTotal() != 4 {
		t.Fatalf("ActiveTotal = %d, want 4", o.ActiveTotal())
	}
	counts := o.ActiveCounts()
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("counts = %v, want [2 2]", counts)
	}
	owned := o.OwnedActive(1)
	if len(owned) != 2 || owned[0] != 4 || owned[1] != 5 {
		t.Fatalf("OwnedActive(1) = %v, want [4 5]", owned)
	}
	if len(o.Owned(1)) != 3 {
		t.Fatalf("Owned(1) = %v, want 3 units incl. inactive", o.Owned(1))
	}
}

func TestApplyValidation(t *testing.T) {
	o := NewBlockOwnership(4, 2)
	if err := o.Apply(Move{From: 0, To: 1, Units: []int{3}}); err == nil {
		t.Error("move of unit not owned by From accepted")
	}
	o.Deactivate(1)
	if err := o.Apply(Move{From: 0, To: 1, Units: []int{1}}); err == nil {
		t.Error("move of inactive unit accepted")
	}
	if err := o.Apply(Move{From: 0, To: 1, Units: []int{99}}); err == nil {
		t.Error("move of out-of-range unit accepted")
	}
	if err := o.Apply(Move{From: 0, To: 1, Units: []int{0}}); err != nil {
		t.Errorf("valid move rejected: %v", err)
	}
	if o.OwnerOf(0) != 1 {
		t.Error("Apply did not transfer ownership")
	}
}

func TestApportion(t *testing.T) {
	got := apportion(10, []float64{1, 1})
	if got[0]+got[1] != 10 || got[0] != 5 {
		t.Fatalf("even split = %v", got)
	}
	got = apportion(10, []float64{3, 1})
	if got[0] != 8 || got[1] != 2 {
		t.Fatalf("3:1 split of 10 = %v, want [8 2]", got)
	}
	got = apportion(7, []float64{1, 1, 1})
	if got[0]+got[1]+got[2] != 7 {
		t.Fatalf("split does not sum: %v", got)
	}
	// Zero-rate slave gets nothing.
	got = apportion(6, []float64{1, 0, 1})
	if got[1] != 0 {
		t.Fatalf("zero-rate slave got work: %v", got)
	}
	// All-zero rates fall back to an even split.
	got = apportion(6, []float64{0, 0, 0})
	if got[0] != 2 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("all-zero fallback = %v", got)
	}
}

func TestApportionQuickSums(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		total := r.Intn(200)
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = r.Float64() * 10
		}
		out := apportion(total, rates)
		sum := 0
		for _, v := range out {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum == total
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// simulateMoves executes moves in order against per-slave unit sets,
// failing if a sender does not hold a unit at send time (the executability
// property the run-time system relies on).
func simulateMoves(t *testing.T, o *Ownership, moves []Move) map[int]map[int]bool {
	t.Helper()
	held := map[int]map[int]bool{}
	for s := 0; s < o.Slaves(); s++ {
		held[s] = map[int]bool{}
		for _, u := range o.OwnedActive(s) {
			held[s][u] = true
		}
	}
	for _, m := range moves {
		for _, u := range m.Units {
			if !held[m.From][u] {
				t.Fatalf("move %v: slave %d does not hold unit %d at send time", m, m.From, u)
			}
			delete(held[m.From], u)
			held[m.To][u] = true
		}
	}
	return held
}

func TestMovesRestrictedChainsThroughIntermediate(t *testing.T) {
	o := NewBlockOwnership(10, 3)
	// Everything starts on slave 0.
	for u := 0; u < 10; u++ {
		if o.OwnerOf(u) != 0 {
			_ = o.Apply(Move{From: o.OwnerOf(u), To: 0, Units: []int{u}})
		}
	}
	targets := []int{4, 3, 3}
	moves := movesRestricted(o, targets)
	simulateMoves(t, o, moves)
	for _, m := range moves {
		if err := o.Apply(m); err != nil {
			t.Fatalf("apply %v: %v", m, err)
		}
		if d := m.To - m.From; d != 1 && d != -1 {
			t.Fatalf("restricted move between non-adjacent slaves: %v", m)
		}
	}
	counts := o.ActiveCounts()
	for i := range targets {
		if counts[i] != targets[i] {
			t.Fatalf("counts = %v, want %v", counts, targets)
		}
	}
	if !o.IsBlock() {
		t.Fatal("restricted movement broke the block distribution")
	}
}

func TestMovesRestrictedQuick(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		slaves := 2 + r.Intn(6)
		units := slaves + r.Intn(40)
		o := NewBlockOwnership(units, slaves)
		// Random deactivations (keep at least one active unit).
		for u := 0; u < units; u++ {
			if r.Intn(4) == 0 && o.ActiveTotal() > 1 {
				o.Deactivate(u)
			}
		}
		rates := make([]float64, slaves)
		for i := range rates {
			rates[i] = 0.1 + r.Float64()*5
		}
		targets := apportion(o.ActiveTotal(), rates)
		moves := movesRestricted(o, targets)
		// Executability.
		held := map[int]map[int]bool{}
		for s := 0; s < slaves; s++ {
			held[s] = map[int]bool{}
			for _, u := range o.OwnedActive(s) {
				held[s][u] = true
			}
		}
		for _, m := range moves {
			if m.To-m.From != 1 && m.To-m.From != -1 {
				return false
			}
			for _, u := range m.Units {
				if !held[m.From][u] {
					return false
				}
				delete(held[m.From], u)
				held[m.To][u] = true
			}
		}
		for _, m := range moves {
			if err := o.Apply(m); err != nil {
				return false
			}
		}
		counts := o.ActiveCounts()
		for i := range targets {
			if counts[i] != targets[i] {
				return false
			}
		}
		return o.IsBlock()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMovesUnrestrictedQuick(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		slaves := 2 + r.Intn(6)
		units := slaves + r.Intn(40)
		o := NewBlockOwnership(units, slaves)
		// Scatter ownership arbitrarily (unrestricted mode has no block
		// invariant).
		for u := 0; u < units; u++ {
			to := r.Intn(slaves)
			if o.OwnerOf(u) != to {
				if err := o.Apply(Move{From: o.OwnerOf(u), To: to, Units: []int{u}}); err != nil {
					return false
				}
			}
		}
		rates := make([]float64, slaves)
		for i := range rates {
			rates[i] = 0.1 + r.Float64()*5
		}
		targets := apportion(o.ActiveTotal(), rates)
		moves := movesUnrestricted(o, targets)
		// Direct moves: each sender owns its units up front.
		for _, m := range moves {
			for _, u := range m.Units {
				if o.OwnerOf(u) != m.From {
					return false
				}
			}
		}
		for _, m := range moves {
			if err := o.Apply(m); err != nil {
				return false
			}
		}
		counts := o.ActiveCounts()
		for i := range targets {
			if counts[i] != targets[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMovesNoopWhenBalanced(t *testing.T) {
	o := NewBlockOwnership(12, 4)
	targets := []int{3, 3, 3, 3}
	if moves := movesRestricted(o, targets); len(moves) != 0 {
		t.Errorf("restricted moves on balanced system: %v", moves)
	}
	if moves := movesUnrestricted(o, targets); len(moves) != 0 {
		t.Errorf("unrestricted moves on balanced system: %v", moves)
	}
}
