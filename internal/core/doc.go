// Package core implements the paper's central load-balancing algorithm
// (sections 3.2 and 4.3) as a pure, deterministic library with no I/O:
//
//   - trend-aware filtering of per-slave computation rates,
//   - proportional redistribution of work units with restricted
//     (adjacent-only, block-preserving) or unrestricted (direct) movement,
//   - the 10% projected-improvement threshold,
//   - the profitability determination that cancels moves whose estimated
//     cost exceeds their projected benefit,
//   - adaptive selection of the load-balancing period from the costs of
//     movement, master interaction, and the OS scheduling quantum, and its
//     conversion to a hook-skip count,
//   - startup grain-size selection for strip-mined loops.
//
// The run-time system (internal/dlb) feeds measurements in and carries the
// resulting instructions to the slaves; everything here is unit-testable in
// isolation.
package core
