package core

import "fmt"

// Fault-tolerance support for the ownership map: rebuilding it from a
// replicated snapshot, expanding it when a node joins mid-run, and
// reassigning a dead slave's units to survivors. Reassignment follows the
// same movement discipline as load balancing (paper Figure 1): restricted
// (adjacent-only, block-preserving) when the distributed loop carries
// dependences, proportional otherwise.

// OwnershipFromMap reconstructs an ownership map from its raw
// representation (a checkpoint or an adoption message). The slices are
// copied.
func OwnershipFromMap(owner []int, active []bool, slaves int) *Ownership {
	if len(owner) != len(active) || slaves <= 0 {
		panic("core: invalid ownership snapshot")
	}
	for u, s := range owner {
		if s < 0 || s >= slaves {
			panic(fmt.Sprintf("core: unit %d owned by out-of-range slave %d", u, s))
		}
	}
	return &Ownership{
		slaves: slaves,
		owner:  append([]int(nil), owner...),
		active: append([]bool(nil), active...),
	}
}

// Snapshot returns the raw owner and active slices (copies), the inverse of
// OwnershipFromMap.
func (o *Ownership) Snapshot() (owner []int, active []bool) {
	return append([]int(nil), o.owner...), append([]bool(nil), o.active...)
}

// AddSlave extends the map with one more slave slot (elastic join). The new
// slave owns nothing; the balancer folds it into later redistributions. Its
// id — the new slot count minus one — places it at the right end of the
// block order, so restricted movement invariants are unaffected.
func (o *Ownership) AddSlave() int {
	o.slaves++
	return o.slaves - 1
}

// ReassignDead transfers every active unit owned by the dead slave to
// surviving slaves and returns the number of units transferred.
//
// With restricted movement the dead slave's block is split between its
// adjacent survivors in block order — the left part to the left neighbor,
// the right part to the right neighbor (all of it when the block sits at
// either end) — preserving the contiguous block distribution that
// loop-carried dependences require (IsBlock stays true).
//
// With unrestricted movement the units are apportioned across survivors
// proportionally to weights (last known rates; nil or all-zero weights
// fall back to an even split).
//
// alive[s] reports whether slave s survives; alive[dead] must be false.
func ReassignDead(o *Ownership, dead int, restricted bool, weights []float64, alive []bool) (int, error) {
	if dead < 0 || dead >= o.slaves {
		return 0, fmt.Errorf("core: reassign of out-of-range slave %d", dead)
	}
	if len(alive) != o.slaves {
		return 0, fmt.Errorf("core: alive mask has %d slots, want %d", len(alive), o.slaves)
	}
	if alive[dead] {
		return 0, fmt.Errorf("core: slave %d still alive", dead)
	}
	units := o.OwnedActive(dead)
	var survivors []int
	for s, a := range alive {
		if a {
			survivors = append(survivors, s)
		}
	}
	if len(survivors) == 0 {
		return 0, fmt.Errorf("core: no survivors to adopt slave %d's units", dead)
	}
	// Inactive owned units carry no remaining work but still hold final data
	// for the gather (e.g. retired LU rows); park them with the nearest
	// survivor. IsBlock only constrains active units, so this is always safe.
	for _, u := range o.Owned(dead) {
		if !o.active[u] {
			o.owner[u] = nearestAlive(survivors, dead)
		}
	}
	if len(units) == 0 {
		return 0, nil
	}

	if restricted {
		// Adjacent-only: split the contiguous block at its midpoint between
		// the nearest surviving neighbors on each side.
		left, right := -1, -1
		for _, s := range survivors {
			if s < dead {
				left = s // survivors ascend, so this ends at the nearest
			} else if s > dead && right == -1 {
				right = s
			}
		}
		cut := len(units) / 2
		switch {
		case left == -1:
			cut = 0 // no left neighbor: everything goes right
		case right == -1:
			cut = len(units) // no right neighbor: everything goes left
		}
		for i, u := range units {
			if i < cut {
				o.owner[u] = left
			} else {
				o.owner[u] = right
			}
		}
		return len(units), nil
	}

	// Unrestricted: proportional apportionment by weight.
	w := make([]float64, len(survivors))
	for i, s := range survivors {
		if weights != nil && s < len(weights) && weights[s] > 0 {
			w[i] = weights[s]
		}
	}
	share := apportion(len(units), w)
	i := 0
	for si, s := range survivors {
		for k := 0; k < share[si]; k++ {
			o.owner[units[i]] = s
			i++
		}
	}
	return len(units), nil
}

// nearestAlive returns the survivor closest to s (ties broken low).
func nearestAlive(survivors []int, s int) int {
	best := survivors[0]
	for _, v := range survivors[1:] {
		dv, db := v-s, best-s
		if dv < 0 {
			dv = -dv
		}
		if db < 0 {
			db = -db
		}
		if dv < db {
			best = v
		}
	}
	return best
}

// movesRestrictedAlive generalizes movesRestricted to a cluster where some
// slave slots are dead: boundary flows are attributed to adjacent *alive*
// slaves, never routed through a dead slot. Dead slots must have target 0.
func movesRestrictedAlive(o *Ownership, targetCounts []int, alive []bool) []Move {
	var ids []int
	for s := 0; s < o.slaves; s++ {
		if alive == nil || alive[s] {
			ids = append(ids, s)
		} else if targetCounts[s] != 0 {
			panic(fmt.Sprintf("core: dead slave %d has target %d", s, targetCounts[s]))
		}
	}
	activeUnits := make([]int, 0, len(o.owner))
	for u := range o.owner {
		if o.active[u] {
			activeUnits = append(activeUnits, u)
		}
	}
	cur := o.ActiveCounts()
	n := len(ids)
	curPrefix := make([]int, n+1)
	tgtPrefix := make([]int, n+1)
	for i, s := range ids {
		curPrefix[i+1] = curPrefix[i] + cur[s]
		tgtPrefix[i+1] = tgtPrefix[i] + targetCounts[s]
	}
	var leftward, rightward []Move
	for b := 0; b < n-1; b++ {
		c, t := curPrefix[b+1], tgtPrefix[b+1]
		switch {
		case t > c:
			units := append([]int(nil), activeUnits[c:t]...)
			leftward = append(leftward, Move{From: ids[b+1], To: ids[b], Units: units})
		case c > t:
			units := append([]int(nil), activeUnits[t:c]...)
			rightward = append(rightward, Move{From: ids[b], To: ids[b+1], Units: units})
		}
	}
	for i, j := 0, len(leftward)-1; i < j; i, j = i+1, j-1 {
		leftward[i], leftward[j] = leftward[j], leftward[i]
	}
	return append(leftward, rightward...)
}

// apportionAlive is apportion restricted to alive slots: dead slots always
// receive zero, and the all-zero-rates fallback splits evenly among the
// alive slots only.
func apportionAlive(total int, rates []float64, alive []bool) []int {
	if alive == nil {
		return apportion(total, rates)
	}
	var ids []int
	for s := range rates {
		if alive[s] {
			ids = append(ids, s)
		}
	}
	sub := make([]float64, len(ids))
	for i, s := range ids {
		sub[i] = rates[s]
	}
	share := apportion(total, sub)
	out := make([]int, len(rates))
	for i, s := range ids {
		out[s] = share[i]
	}
	return out
}
