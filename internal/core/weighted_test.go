package core

import (
	"math"
	"reflect"
	"testing"
)

func TestActiveWeightTotals(t *testing.T) {
	o := NewBlockOwnership(8, 2) // units 0-3 on slave 0, 4-7 on slave 1
	o.Deactivate(0)
	o.Deactivate(7)

	// Nil weights count active units.
	if got := ActiveWeightTotals(o, nil); !reflect.DeepEqual(got, []float64{3, 3}) {
		t.Errorf("nil weights: %v, want [3 3]", got)
	}
	w := []float64{10, 1, 2, 3, 4, 5, 6, 20}
	if got := ActiveWeightTotals(o, w); !reflect.DeepEqual(got, []float64{6, 15}) {
		t.Errorf("weighted: %v, want [6 15]", got)
	}
}

func TestCompletionTimeWeighted(t *testing.T) {
	if got := CompletionTimeWeighted([]float64{10, 6}, []float64{2, 3}); got != 5 {
		t.Errorf("got %g, want 5 (slot 0: 10/2)", got)
	}
	// A slot with no weight is skipped even at zero rate.
	if got := CompletionTimeWeighted([]float64{0, 6}, []float64{0, 3}); got != 2 {
		t.Errorf("empty slot: got %g, want 2", got)
	}
	// A slot holding weight with no measured rate never finishes.
	if got := CompletionTimeWeighted([]float64{1, 6}, []float64{0, 3}); !math.IsInf(got, 1) {
		t.Errorf("stalled slot: got %g, want +Inf", got)
	}
}

func TestWeightedSplitRangeUniform(t *testing.T) {
	// Uniform weights and equal shares reduce to an even split.
	unitW := []float64{1, 1, 1, 1, 1, 1}
	counts, tgtW := WeightedSplitRange(unitW, []float64{3, 3})
	if !reflect.DeepEqual(counts, []int{3, 3}) {
		t.Errorf("counts %v, want [3 3]", counts)
	}
	if !reflect.DeepEqual(tgtW, []float64{3, 3}) {
		t.Errorf("tgtW %v, want [3 3]", tgtW)
	}
}

func TestWeightedSplitRangeSkewed(t *testing.T) {
	// One hot unit at the front: equal weight shares mean the first slot
	// takes only the hot unit while the second takes all five cheap ones.
	unitW := []float64{5, 1, 1, 1, 1, 1}
	counts, tgtW := WeightedSplitRange(unitW, []float64{5, 5})
	if !reflect.DeepEqual(counts, []int{1, 5}) {
		t.Errorf("counts %v, want [1 5]", counts)
	}
	if !reflect.DeepEqual(tgtW, []float64{5, 5}) {
		t.Errorf("tgtW %v, want [5 5]", tgtW)
	}
}

func TestWeightedSplitRangeContiguous(t *testing.T) {
	// Counts must always describe a prefix partition covering every unit,
	// whatever the shares.
	unitW := []float64{2, 3, 1, 4, 2, 2, 1, 1}
	counts, _ := WeightedSplitRange(unitW, []float64{4, 8, 4})
	total := 0
	for _, c := range counts {
		if c < 0 {
			t.Fatalf("negative count in %v", counts)
		}
		total += c
	}
	if total != len(unitW) {
		t.Errorf("counts %v cover %d units, want %d", counts, total, len(unitW))
	}
}

func TestWeightedPeelCounts(t *testing.T) {
	// Slave 0 holds the heavy tail; shares ask for an even weight split.
	// Its highest-numbered units peel off to slave 1 — the same units
	// unrestricted movement would take.
	w := []float64{1, 1, 4, 4, 1, 1}
	owned := [][]int{{0, 1, 2, 3}, {4, 5}}
	counts, tgtW := WeightedPeelCounts(owned, w, []float64{6, 6})
	if !reflect.DeepEqual(counts, []int{3, 3}) {
		t.Errorf("counts %v, want [3 3]", counts)
	}
	if !reflect.DeepEqual(tgtW, []float64{6, 6}) {
		t.Errorf("tgtW %v, want [6 6]", tgtW)
	}
}

func TestWeightedPeelCountsNoSurplus(t *testing.T) {
	// Already balanced by weight: nothing peels, counts stay put.
	w := []float64{3, 1, 1, 1}
	owned := [][]int{{0}, {1, 2, 3}}
	counts, tgtW := WeightedPeelCounts(owned, w, []float64{3, 3})
	if !reflect.DeepEqual(counts, []int{1, 3}) {
		t.Errorf("counts %v, want [1 3]", counts)
	}
	if !reflect.DeepEqual(tgtW, []float64{3, 3}) {
		t.Errorf("tgtW %v, want [3 3]", tgtW)
	}
}

func TestWeightedPeelCountsDeadSlot(t *testing.T) {
	// A slot with zero share gives up everything; the pool lands on the
	// live slots without losing units.
	w := []float64{1, 1, 1, 1}
	owned := [][]int{{0, 1}, {2, 3}}
	counts, tgtW := WeightedPeelCounts(owned, w, []float64{0, 4})
	if counts[0] != 0 {
		t.Errorf("dead slot kept %d units", counts[0])
	}
	if counts[1] != 4 || tgtW[1] != 4 {
		t.Errorf("live slot got counts=%d tgtW=%g, want 4/4", counts[1], tgtW[1])
	}
}
