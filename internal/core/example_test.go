package core_test

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// One load-balancing decision: four slaves, one at half speed. The balancer
// filters the rates, computes a rate-proportional allocation, and emits the
// movement instructions.
func Example() {
	cfg := core.DefaultConfig(4, false) // unrestricted movement
	own := core.NewBlockOwnership(100, 4)
	bal := core.NewBalancer(cfg, own, core.NewMoveCostModel(time.Millisecond, 10*time.Microsecond))

	statuses := []core.Status{
		{Rate: 50}, {Rate: 100}, {Rate: 100}, {Rate: 100},
	}
	var d core.Decision
	for i := 0; i < 4; i++ { // feed the trend filter until it converges
		d = bal.Step(statuses, 100)
	}
	fmt.Println("targets:", d.Targets)
	fmt.Println("counts: ", own.ActiveCounts())
	// Output:
	// targets: [14 29 29 28]
	// counts:  [14 29 29 28]
}

// The adaptive period rule (paper Figure 4).
func ExampleTargetPeriod() {
	p := core.TargetPeriod(core.PeriodInputs{
		MoveCost:        8 * time.Second,        // 0.1x -> 800ms
		InteractionCost: 10 * time.Millisecond,  // 20x -> 200ms
		Quantum:         100 * time.Millisecond, // 5x -> 500ms
	})
	fmt.Println(p)
	// Output: 800ms
}

// Strip-mining grain selection (paper §4.4: blocks of ~1.5 quanta).
func ExampleGrainSize() {
	g := core.GrainSize(3*time.Millisecond, 100*time.Millisecond, 1.5)
	fmt.Println(g, "iterations per block")
	// Output: 50 iterations per block
}
