package core

import (
	"math"
	"time"
)

// Config controls the load-balancing algorithm. The zero value is not
// usable; see DefaultConfig.
type Config struct {
	// Slaves is the number of worker processors.
	Slaves int
	// Restricted selects adjacent-only, block-preserving movement (needed
	// when the distributed loop carries dependences, Figure 1b).
	Restricted bool
	// MinImprovement is the projected-improvement threshold below which no
	// movement instructions are generated (paper: 10%). Zero disables it.
	MinImprovement float64
	// DisableFilter bypasses rate filtering (ablation).
	DisableFilter bool
	// DisableProfitability bypasses the profitability determination
	// (ablation).
	DisableProfitability bool
	// FilterMinWeight and FilterMaxWeight bound the trend-adaptive sample
	// weight of the rate filter.
	FilterMinWeight, FilterMaxWeight float64
	// Quantum is the OS scheduling quantum on the slaves.
	Quantum time.Duration
	// MaxSkip caps the number of hooks skipped between interactions.
	MaxSkip int
}

// DefaultConfig returns the paper's parameter choices.
func DefaultConfig(slaves int, restricted bool) Config {
	return Config{
		Slaves:          slaves,
		Restricted:      restricted,
		MinImprovement:  0.10,
		FilterMinWeight: 0.25,
		FilterMaxWeight: 1.0,
		Quantum:         100 * time.Millisecond,
		MaxSkip:         50,
	}
}

// Status is one slave's report at a load-balancing point.
type Status struct {
	// Rate is the measured computation rate in work units per second since
	// the previous report.
	Rate float64
	// MoveCost is the measured duration of the last work movement this
	// slave performed (0 if none since the previous report).
	MoveCost time.Duration
	// InteractionCost is the measured cost of the status/instruction
	// exchange itself.
	InteractionCost time.Duration
}

// Decision is the master's output for one load-balancing phase.
type Decision struct {
	// Moves are the work transfers to perform (empty if balanced or
	// suppressed).
	Moves []Move
	// SkipHooks tells slaves how many hook instances to skip before the
	// next interaction.
	SkipHooks int
	// Period is the target time between load balancings.
	Period time.Duration
	// FilteredRates are the post-filter per-slave rates used.
	FilteredRates []float64
	// Improvement is the projected fractional reduction in completion time
	// of the new distribution over the current one.
	Improvement float64
	// Suppressed explains why moves were withheld: "", "below-threshold",
	// or "not-profitable".
	Suppressed string
	// Targets is the per-slave target active-unit allocation.
	Targets []int
}

// Balancer is the master-side decision engine. It owns the authoritative
// Ownership map; the run-time system feeds it slave statuses and forwards
// the resulting moves.
type Balancer struct {
	cfg      Config
	own      *Ownership
	filters  []*RateFilter
	costs    *MoveCostModel
	alive    []bool        // nil: all slots alive (no failures so far)
	lastMove time.Duration // most recent measured movement cost
	lastInt  time.Duration // most recent measured interaction cost
}

// NewBalancer creates a balancer over an initial distribution. The cost
// model provides prior estimates for movement cost until real measurements
// arrive.
func NewBalancer(cfg Config, own *Ownership, costs *MoveCostModel) *Balancer {
	if cfg.Slaves != own.Slaves() {
		panic("core: config/ownership slave count mismatch")
	}
	if cfg.FilterMinWeight == 0 {
		cfg.FilterMinWeight = 0.25
	}
	if cfg.FilterMaxWeight == 0 {
		cfg.FilterMaxWeight = 1.0
	}
	b := &Balancer{cfg: cfg, own: own, costs: costs}
	for i := 0; i < cfg.Slaves; i++ {
		b.filters = append(b.filters, NewRateFilter(cfg.FilterMinWeight, cfg.FilterMaxWeight))
	}
	return b
}

// Ownership exposes the balancer's authoritative distribution map.
func (b *Balancer) Ownership() *Ownership { return b.own }

// Deactivate marks a unit as having no remaining work.
func (b *Balancer) Deactivate(unit int) { b.own.Deactivate(unit) }

// SetAlive installs the liveness mask used after a failure: dead slots are
// excluded from target allocations and never appear as move endpoints, and
// their (stale) rate reports are ignored. Passing nil restores the
// no-failures behavior. The mask is also grown implicitly by AddSlave via
// Grow.
func (b *Balancer) SetAlive(alive []bool) {
	if alive == nil {
		b.alive = nil
		return
	}
	if len(alive) != b.cfg.Slaves {
		panic("core: alive mask size mismatch")
	}
	b.alive = append([]bool(nil), alive...)
}

// Grow extends the balancer (and its ownership map) to cover newly joined
// slave slots. New slots start alive with a fresh rate filter and zero
// owned units.
func (b *Balancer) Grow(slaves int) {
	for b.cfg.Slaves < slaves {
		b.own.AddSlave()
		b.cfg.Slaves++
		b.filters = append(b.filters, NewRateFilter(b.cfg.FilterMinWeight, b.cfg.FilterMaxWeight))
		if b.alive != nil {
			b.alive = append(b.alive, true)
		}
	}
}

// completionTime is the projected time for the slowest slave to finish its
// allocation at the given rates.
func completionTime(counts []int, rates []float64) float64 {
	worst := 0.0
	for i := range counts {
		if counts[i] == 0 {
			continue
		}
		if rates[i] <= 0 {
			return math.Inf(1)
		}
		if t := float64(counts[i]) / rates[i]; t > worst {
			worst = t
		}
	}
	return worst
}

// Step runs one load-balancing phase: filter rates, compute the
// proportional target allocation, apply the improvement threshold and
// profitability determination, update ownership, and derive the next
// period and hook-skip count. unitsPerHook is the total work (active
// units across all slaves) executed between consecutive hook instances.
func (b *Balancer) Step(statuses []Status, unitsPerHook float64) Decision {
	return b.step(statuses, unitsPerHook, nil)
}

// StepWeighted is Step under a per-unit cost model: weights holds one
// relative cost per unit (indexed like the ownership map), status rates are
// in weight units per second, and unitsPerHook is likewise weighted. Target
// allocations equalize weighted completion time instead of unit counts.
func (b *Balancer) StepWeighted(statuses []Status, unitsPerHook float64, weights []float64) Decision {
	if weights == nil {
		panic("core: StepWeighted requires a weight vector")
	}
	return b.step(statuses, unitsPerHook, weights)
}

func (b *Balancer) step(statuses []Status, unitsPerHook float64, weights []float64) Decision {
	if len(statuses) != b.cfg.Slaves {
		panic("core: status count mismatch")
	}
	rates := make([]float64, b.cfg.Slaves)
	sumRate := 0.0
	for i, st := range statuses {
		if b.alive != nil && !b.alive[i] {
			continue // dead slot: rate stays 0, filter state frozen
		}
		if b.cfg.DisableFilter {
			rates[i] = st.Rate
		} else {
			rates[i] = b.filters[i].Update(st.Rate)
		}
		if rates[i] < 0 {
			rates[i] = 0
		}
		sumRate += rates[i]
		if st.MoveCost > 0 {
			b.lastMove = st.MoveCost
		}
		if st.InteractionCost > 0 {
			b.lastInt = st.InteractionCost
		}
	}

	period := TargetPeriod(PeriodInputs{
		MoveCost:        b.lastMove,
		InteractionCost: b.lastInt,
		Quantum:         b.cfg.Quantum,
	})

	var hookInterval time.Duration
	if sumRate > 0 && unitsPerHook > 0 {
		hookInterval = time.Duration(unitsPerHook / sumRate * float64(time.Second))
	}
	skip := HookSkip(period, hookInterval, b.cfg.MaxSkip)

	d := Decision{
		Period:        period,
		SkipHooks:     skip,
		FilteredRates: rates,
	}

	total := b.own.ActiveTotal()
	if total == 0 {
		return d
	}
	counts := b.own.ActiveCounts()

	var targets []int
	var before, after float64
	if weights == nil {
		targets = apportionAlive(total, rates, b.alive)
		before = completionTime(counts, rates)
		after = completionTime(targets, rates)
	} else {
		curW := ActiveWeightTotals(b.own, weights)
		var tgtW []float64
		targets, tgtW = weightedTargets(b.own, rates, weights, b.alive, b.cfg.Restricted)
		before = CompletionTimeWeighted(curW, rates)
		after = CompletionTimeWeighted(tgtW, rates)
	}
	d.Targets = targets
	switch {
	case math.IsInf(before, 1) && !math.IsInf(after, 1):
		d.Improvement = 1
	case before <= 0 || math.IsInf(after, 1):
		d.Improvement = 0
	default:
		d.Improvement = 1 - after/before
	}

	if d.Improvement < b.cfg.MinImprovement || d.Improvement <= 0 {
		d.Suppressed = "below-threshold"
		return d
	}

	var moves []Move
	if b.cfg.Restricted {
		if b.alive != nil {
			moves = movesRestrictedAlive(b.own, targets, b.alive)
		} else {
			moves = movesRestricted(b.own, targets)
		}
	} else {
		// Unrestricted movement is dead-slot safe as is: a dead slot has
		// zero owned units and a zero target, so it is neither surplus nor
		// deficit and never becomes a move endpoint.
		moves = movesUnrestricted(b.own, targets)
	}
	if len(moves) == 0 {
		return d
	}

	if !b.cfg.DisableProfitability {
		cost := b.costs.EstimateMoves(moves)
		benefit := time.Duration(d.Improvement * float64(period))
		if cost > benefit {
			d.Suppressed = "not-profitable"
			return d
		}
	}

	for _, m := range moves {
		if err := b.own.Apply(m); err != nil {
			// Internal invariant violation: the move generators only emit
			// moves consistent with the ownership map.
			panic(err)
		}
	}
	d.Moves = moves
	return d
}

// ObserveMoveCost lets the run-time report a measured movement so the cost
// model improves over time.
func (b *Balancer) ObserveMoveCost(units int, cost time.Duration) {
	b.costs.Observe(units, cost)
	if cost > 0 {
		b.lastMove = cost
	}
}
