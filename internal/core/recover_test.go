package core

import "testing"

func TestOwnershipFromMapRoundTrip(t *testing.T) {
	o := NewBlockOwnership(17, 4)
	o.Deactivate(3)
	o.Deactivate(11)
	owner, active := o.Snapshot()
	r := OwnershipFromMap(owner, active, 4)
	for u := 0; u < 17; u++ {
		if r.OwnerOf(u) != o.OwnerOf(u) || r.IsActive(u) != o.IsActive(u) {
			t.Fatalf("unit %d: got (%d,%v), want (%d,%v)",
				u, r.OwnerOf(u), r.IsActive(u), o.OwnerOf(u), o.IsActive(u))
		}
	}
	// The snapshot is a copy, not an alias.
	owner[0] = 3
	if r.OwnerOf(0) == 3 && o.OwnerOf(0) != 3 {
		t.Fatal("snapshot aliases the map")
	}
}

func TestAddSlave(t *testing.T) {
	o := NewBlockOwnership(12, 3)
	id := o.AddSlave()
	if id != 3 {
		t.Fatalf("new slave id = %d, want 3", id)
	}
	if got := len(o.ActiveCounts()); got != 4 {
		t.Fatalf("slots after join = %d, want 4", got)
	}
	if n := len(o.OwnedActive(3)); n != 0 {
		t.Fatalf("joiner owns %d units, want 0", n)
	}
	if !o.IsBlock() {
		t.Fatal("join broke the block invariant")
	}
}

// TestReassignDeadRestricted is the SOR ownership-map invariant test: after
// an interior, left-edge, or right-edge slave dies, adjacent-only
// reassignment must keep the distribution a contiguous block partition
// (IsBlock), keep every unit owned by a survivor, and only enlarge the
// neighbors adjacent to the dead block.
func TestReassignDeadRestricted(t *testing.T) {
	const units, slaves = 256, 8
	for dead := 0; dead < slaves; dead++ {
		o := NewBlockOwnership(units, slaves)
		before := o.ActiveCounts()
		alive := make([]bool, slaves)
		for s := range alive {
			alive[s] = s != dead
		}
		moved, err := ReassignDead(o, dead, true, nil, alive)
		if err != nil {
			t.Fatalf("dead=%d: %v", dead, err)
		}
		if moved != before[dead] {
			t.Fatalf("dead=%d: moved %d units, want %d", dead, moved, before[dead])
		}
		if !o.IsBlock() {
			t.Fatalf("dead=%d: block invariant broken", dead)
		}
		after := o.ActiveCounts()
		if after[dead] != 0 {
			t.Fatalf("dead=%d: still owns %d units", dead, after[dead])
		}
		if o.ActiveTotal() != units {
			t.Fatalf("dead=%d: lost units: %d", dead, o.ActiveTotal())
		}
		for s := 0; s < slaves; s++ {
			if s == dead {
				continue
			}
			adjacent := s == dead-1 || s == dead+1
			if adjacent && after[s] <= before[s] {
				t.Fatalf("dead=%d: adjacent slave %d did not grow (%d -> %d)",
					dead, s, before[s], after[s])
			}
			if !adjacent && after[s] != before[s] {
				t.Fatalf("dead=%d: non-adjacent slave %d changed (%d -> %d)",
					dead, s, before[s], after[s])
			}
		}
	}
}

// A second failure must skip over the earlier dead slot and reach the
// nearest surviving neighbor.
func TestReassignDeadRestrictedSkipsDeadNeighbor(t *testing.T) {
	o := NewBlockOwnership(80, 5)
	alive := []bool{true, false, true, true, true}
	if _, err := ReassignDead(o, 1, true, nil, alive); err != nil {
		t.Fatal(err)
	}
	alive[2] = false
	if _, err := ReassignDead(o, 2, true, nil, alive); err != nil {
		t.Fatal(err)
	}
	if !o.IsBlock() {
		t.Fatal("block invariant broken after cascading failures")
	}
	counts := o.ActiveCounts()
	if counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("dead slaves still own units: %v", counts)
	}
	// Slave 2's block split between slaves 0 (skipping dead 1) and 3.
	if counts[0] <= 16 || counts[3] <= 16 {
		t.Fatalf("survivors did not adopt across the dead slot: %v", counts)
	}
}

func TestReassignDeadProportional(t *testing.T) {
	o := NewBlockOwnership(100, 4)
	alive := []bool{true, true, false, true}
	weights := []float64{3, 1, 5, 1} // dead slave's weight must be ignored
	moved, err := ReassignDead(o, 2, false, weights, alive)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 25 {
		t.Fatalf("moved = %d, want 25", moved)
	}
	counts := o.ActiveCounts()
	if counts[2] != 0 {
		t.Fatalf("dead slave still owns units: %v", counts)
	}
	if o.ActiveTotal() != 100 {
		t.Fatalf("lost units: %d", o.ActiveTotal())
	}
	// 25 units split 3:1:1 across slaves 0,1,3 => 15,5,5.
	if counts[0] != 40 || counts[1] != 30 || counts[3] != 30 {
		t.Fatalf("proportional shares wrong: %v", counts)
	}
	// All-zero weights fall back to an even split among survivors.
	o2 := NewBlockOwnership(90, 4)
	if _, err := ReassignDead(o2, 2, false, nil, alive); err != nil {
		t.Fatal(err)
	}
	c2 := o2.ActiveCounts()
	if c2[0]+c2[1]+c2[3] != 90 || c2[2] != 0 {
		t.Fatalf("even-split fallback wrong: %v", c2)
	}
}

func TestReassignDeadErrors(t *testing.T) {
	o := NewBlockOwnership(10, 2)
	if _, err := ReassignDead(o, 0, true, nil, []bool{true, true}); err == nil {
		t.Error("alive slave reassigned")
	}
	if _, err := ReassignDead(o, 0, true, nil, []bool{false, false}); err == nil {
		t.Error("reassigned with no survivors")
	}
	if _, err := ReassignDead(o, 5, true, nil, []bool{true, true}); err == nil {
		t.Error("out-of-range slave accepted")
	}
}

// The dead-slot hazard: with cur=[4,0,4] and targets=[5,0,3], the plain
// prefix-based restricted mover would emit a move From the dead slot 1.
// movesRestrictedAlive must route the transfer 2 -> 0 directly.
func TestMovesRestrictedAlive(t *testing.T) {
	o := NewBlockOwnership(8, 3)
	alive := []bool{true, false, true}
	if _, err := ReassignDead(o, 1, true, nil, alive); err != nil {
		t.Fatal(err)
	}
	// Make counts [4,0,4]: ReassignDead on 8/3 blocks gives [4,0,4] already
	// (blocks 3,2,3; dead slave 1's 2 units split 1/1).
	cur := o.ActiveCounts()
	if cur[0] != 4 || cur[1] != 0 || cur[2] != 4 {
		t.Fatalf("setup counts = %v", cur)
	}
	moves := movesRestrictedAlive(o, []int{5, 0, 3}, alive)
	for _, m := range moves {
		if !alive[m.From] || !alive[m.To] {
			t.Fatalf("move touches dead slot: %+v", m)
		}
		if err := o.Apply(m); err != nil {
			t.Fatalf("apply %+v: %v", m, err)
		}
	}
	got := o.ActiveCounts()
	if got[0] != 5 || got[1] != 0 || got[2] != 3 {
		t.Fatalf("counts after moves = %v, want [5 0 3]", got)
	}
	if !o.IsBlock() {
		t.Fatal("block invariant broken by alive-aware moves")
	}
}

func TestBalancerSetAlive(t *testing.T) {
	own := NewBlockOwnership(80, 4)
	cfg := DefaultConfig(4, true)
	cfg.DisableFilter = true
	cfg.DisableProfitability = true
	b := NewBalancer(cfg, own, NewMoveCostModel(0, 0))
	alive := []bool{true, true, false, true}
	if _, err := ReassignDead(own, 2, true, nil, alive); err != nil {
		t.Fatal(err)
	}
	b.SetAlive(alive)
	// The dead slot reports a huge stale rate; it must be ignored. Slave 3
	// is slow, so work should shift away from it through alive slots only.
	statuses := []Status{{Rate: 10}, {Rate: 10}, {Rate: 1e9}, {Rate: 2}}
	d := b.Step(statuses, 80)
	if d.Targets[2] != 0 {
		t.Fatalf("dead slot got target %d: %v", d.Targets[2], d.Targets)
	}
	for _, m := range d.Moves {
		if m.From == 2 || m.To == 2 {
			t.Fatalf("move touches dead slot: %+v", m)
		}
	}
	if !own.IsBlock() {
		t.Fatal("block invariant broken")
	}
	if own.ActiveCounts()[2] != 0 {
		t.Fatal("dead slot owns units after step")
	}

	// Elastic join: grow to 5 slots; the joiner starts alive and empty and
	// receives a proportional target on the next step.
	b.Grow(5)
	statuses = append(statuses, Status{Rate: 10})
	d = b.Step(statuses, 80)
	if len(d.Targets) != 5 || d.Targets[4] == 0 {
		t.Fatalf("joiner got no target: %v", d.Targets)
	}
}

func TestApportionAlive(t *testing.T) {
	got := apportionAlive(10, []float64{1, 9, 1}, []bool{true, false, true})
	if got[1] != 0 || got[0]+got[2] != 10 || got[0] != 5 {
		t.Fatalf("apportionAlive = %v", got)
	}
	// All-zero rates: even split among alive only.
	got = apportionAlive(9, []float64{0, 0, 0}, []bool{true, false, true})
	if got[1] != 0 || got[0]+got[2] != 9 {
		t.Fatalf("even-split fallback = %v", got)
	}
}
