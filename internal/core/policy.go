package core

import "time"

// MoveCostModel estimates the cost of moving work units between slaves as
// fixed + perUnit·n, updated from measured movement times. "The cost of
// moving work is measured each time work is moved" (§4.3).
type MoveCostModel struct {
	fixed   time.Duration
	perUnit time.Duration
	alpha   float64 // EMA weight for new observations
}

// NewMoveCostModel creates a model with prior estimates (e.g. derived from
// link latency and per-unit bytes over bandwidth).
func NewMoveCostModel(fixed, perUnit time.Duration) *MoveCostModel {
	return &MoveCostModel{fixed: fixed, perUnit: perUnit, alpha: 0.5}
}

// Observe records a measured movement of n units taking total time cost.
func (m *MoveCostModel) Observe(n int, cost time.Duration) {
	if n <= 0 {
		return
	}
	per := cost / time.Duration(n)
	m.perUnit += time.Duration(m.alpha * float64(per-m.perUnit))
	if m.perUnit < 0 {
		m.perUnit = 0
	}
}

// Estimate predicts the cost of moving n units in one transfer.
func (m *MoveCostModel) Estimate(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return m.fixed + time.Duration(n)*m.perUnit
}

// EstimateMoves predicts the total cost of a set of transfers.
func (m *MoveCostModel) EstimateMoves(moves []Move) time.Duration {
	var total time.Duration
	for _, mv := range moves {
		total += m.Estimate(len(mv.Units))
	}
	return total
}

// PeriodInputs are the measured costs that bound the load-balancing period
// from below (paper Figure 4).
type PeriodInputs struct {
	// MoveCost is the measured cost of the last work movement; the period
	// must be at least 10x smaller... i.e. at least 0.1 x this cost.
	MoveCost time.Duration
	// InteractionCost is the cost of one status/instruction exchange with
	// the master; the period must be at least 20x it so overhead stays low.
	InteractionCost time.Duration
	// Quantum is the OS scheduling time slice; the period must cover at
	// least 5 quanta (min 500 ms) so context-switching effects average out.
	Quantum time.Duration
}

// TargetPeriod returns the load-balancing period: the largest of the three
// lower bounds of Figure 4 (0.1 x movement cost, 20 x interaction cost,
// max(5 x quantum, 500 ms)).
func TargetPeriod(in PeriodInputs) time.Duration {
	p := 500 * time.Millisecond
	if q := 5 * in.Quantum; q > p {
		p = q
	}
	if m := in.MoveCost / 10; m > p {
		p = m
	}
	if i := 20 * in.InteractionCost; i > p {
		p = i
	}
	return p
}

// HookSkip converts a target period into the number of hook instances to
// skip before the next load-balancing interaction. hookInterval is the
// predicted time between consecutive hook visits (work between hooks
// divided by the aggregate computation rate). At least every hook is
// honored (skip 0) and the skip is capped so a slow system still balances.
func HookSkip(period, hookInterval time.Duration, maxSkip int) int {
	if hookInterval <= 0 {
		return 0
	}
	visits := int((period + hookInterval/2) / hookInterval)
	if visits < 1 {
		visits = 1
	}
	skip := visits - 1
	if maxSkip >= 0 && skip > maxSkip {
		skip = maxSkip
	}
	return skip
}

// GrainSize returns the number of iterations per strip-mined block so that
// one block costs about factor x quantum of computation (the paper uses
// 150 ms = 1.5 quanta, measured at startup). timePerIter is the measured
// cost of one iteration.
func GrainSize(timePerIter, quantum time.Duration, factor float64) int {
	if timePerIter <= 0 {
		return 1
	}
	target := time.Duration(factor * float64(quantum))
	g := int(target / timePerIter)
	if g < 1 {
		g = 1
	}
	return g
}
