package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestBalancerInvariantsQuick drives a balancer with random rate sequences
// and checks the invariants every step:
//   - active units are conserved (moves never lose or duplicate work),
//   - restricted mode keeps the block property and adjacent-only moves,
//   - the decision's targets always sum to the active total,
//   - the period never falls below the quantum floor.
func TestBalancerInvariantsQuick(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		slaves := 2 + r.Intn(6)
		units := slaves + r.Intn(60)
		restricted := r.Intn(2) == 0
		cfg := DefaultConfig(slaves, restricted)
		own := NewBlockOwnership(units, slaves)
		bal := NewBalancer(cfg, own, NewMoveCostModel(time.Millisecond, 10*time.Microsecond))

		total := own.ActiveTotal()
		for step := 0; step < 12; step++ {
			// Occasionally retire some units (LU-style shrinking).
			if r.Intn(3) == 0 && own.ActiveTotal() > slaves {
				for u := 0; u < units; u++ {
					if own.IsActive(u) && r.Intn(8) == 0 {
						own.Deactivate(u)
					}
				}
				total = own.ActiveTotal()
			}
			statuses := make([]Status, slaves)
			for i := range statuses {
				statuses[i] = Status{Rate: 1 + r.Float64()*99}
			}
			d := bal.Step(statuses, float64(total))

			if own.ActiveTotal() != total {
				return false
			}
			if restricted && !own.IsBlock() {
				return false
			}
			for _, m := range d.Moves {
				if restricted && m.To-m.From != 1 && m.To-m.From != -1 {
					return false
				}
				if len(m.Units) == 0 {
					return false
				}
			}
			if d.Targets != nil {
				sum := 0
				for _, v := range d.Targets {
					sum += v
				}
				if sum != total {
					return false
				}
			}
			if d.Period < 500*time.Millisecond {
				return false
			}
			if d.SkipHooks < 0 || d.SkipHooks > cfg.MaxSkip {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestFilterBoundedQuick: the filtered rate always stays within the range
// of values seen so far (a convex-combination property of the trend
// filter).
func TestFilterBoundedQuick(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := NewRateFilter(0.25, 1.0)
		lo, hi := 1e18, -1e18
		for i := 0; i < 50; i++ {
			v := r.Float64() * 1000
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			got := f.Update(v)
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestApportionMonotoneQuick: raising one slave's rate never lowers its
// allocation (house-monotonicity in the rate argument for the largest-
// remainder method can fail in theory for population paradox cases, but
// must hold when only one rate increases and the others are fixed — if it
// doesn't, the balancer could oscillate. Verify empirically over random
// instances; tolerate equality).
func TestApportionMonotoneQuick(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		total := 10 + r.Intn(100)
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = 0.5 + r.Float64()*10
		}
		before := apportion(total, rates)
		k := r.Intn(n)
		rates[k] *= 1.5
		after := apportion(total, rates)
		// The boosted slave must not lose more than 1 unit (largest
		// remainder can wobble by one).
		return after[k] >= before[k]-1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
