package core

// RateFilter smooths a slave's measured computation rate. Following the
// paper: "new rate information for each slave is filtered by averaging it
// with older rate information, with relative weights set according to
// trends observed in the rates." A consistent trend (several samples moving
// the same direction) shifts weight toward the new samples so genuine load
// changes are tracked quickly; direction reversals reset the weight so
// short spikes and quantum-scale oscillation are damped.
type RateFilter struct {
	minWeight float64
	maxWeight float64
	weight    float64
	value     float64
	lastDir   int
	primed    bool
}

// NewRateFilter creates a filter with the given weight range for new
// samples. Typical values: min 0.25 (heavy smoothing), max 1.0 (track
// immediately once a trend is confirmed).
func NewRateFilter(minWeight, maxWeight float64) *RateFilter {
	if minWeight <= 0 || minWeight > 1 || maxWeight < minWeight || maxWeight > 1 {
		panic("core: rate filter weights must satisfy 0 < min <= max <= 1")
	}
	return &RateFilter{minWeight: minWeight, maxWeight: maxWeight, weight: minWeight}
}

// Update feeds one raw rate sample and returns the filtered rate.
func (f *RateFilter) Update(sample float64) float64 {
	if !f.primed {
		f.value = sample
		f.primed = true
		return f.value
	}
	dir := 0
	switch {
	case sample > f.value:
		dir = 1
	case sample < f.value:
		dir = -1
	}
	if dir != 0 && dir == f.lastDir {
		// Confirmed trend: double the weight (up to max) so the filter
		// converges on the new level quickly.
		f.weight *= 2
		if f.weight > f.maxWeight {
			f.weight = f.maxWeight
		}
	} else {
		f.weight = f.minWeight
	}
	f.lastDir = dir
	f.value += f.weight * (sample - f.value)
	return f.value
}

// Value returns the current filtered rate (0 before the first sample).
func (f *RateFilter) Value() float64 { return f.value }

// Primed reports whether at least one sample has been consumed.
func (f *RateFilter) Primed() bool { return f.primed }
