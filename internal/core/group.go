package core

// Exported entry points into the apportionment and restricted-movement
// machinery for callers that compose their own target allocations — the
// hierarchical topology in internal/dlb builds per-group targets (each
// group's slice apportioned from its own rates, group totals adjusted by
// the diffusive inter-group flows) and needs the same largest-remainder
// rounding and prefix-boundary move generation the Balancer uses, over
// the same Ownership map, so intra-group rebalancing and cross-boundary
// shifts come out of one consistent move schedule.

// Apportion computes integer target counts proportional to rates,
// summing to total, by the largest-remainder method (ties to the lower
// index). Non-positive rates get no work unless every rate is
// non-positive, in which case the split is even.
func Apportion(total int, rates []float64) []int {
	return apportion(total, rates)
}

// ApportionAlive is Apportion restricted to the slots marked alive; dead
// slots get zero. A nil mask means every slot is alive.
func ApportionAlive(total int, rates []float64, alive []bool) []int {
	return apportionAlive(total, rates, alive)
}

// MovesRestricted computes the adjacent-only, block-preserving moves
// that turn the current distribution of active units into one matching
// targetCounts (which must sum to the active total). Moves are emitted
// in an order slaves can execute directly: leftward flows right-to-left
// first, then rightward flows left-to-right. The ownership map is not
// modified; the caller applies the moves.
func MovesRestricted(o *Ownership, targetCounts []int) []Move {
	return movesRestricted(o, targetCounts)
}

// MovesRestrictedAlive is MovesRestricted over the alive slots only:
// dead slots must have zero targets and the adjacency chain skips them.
// A nil mask is equivalent to MovesRestricted.
func MovesRestrictedAlive(o *Ownership, targetCounts []int, alive []bool) []Move {
	return movesRestrictedAlive(o, targetCounts, alive)
}

// MovesUnrestricted computes arbitrary-endpoint moves turning the current
// active distribution into targetCounts: surplus slaves give up their
// highest-numbered active units first. Dead-slot safe as is (a dead slot
// has zero owned units and a zero target). The ownership map is not
// modified.
func MovesUnrestricted(o *Ownership, targetCounts []int) []Move {
	return movesUnrestricted(o, targetCounts)
}

// CompletionTime is the projected time for the slowest slot to finish
// its allocation at the given rates: max over slots of counts/rate, +Inf
// when a slot has work but no measured rate.
func CompletionTime(counts []int, rates []float64) float64 {
	return completionTime(counts, rates)
}
