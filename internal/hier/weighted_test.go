package hier

import (
	"math"
	"testing"
)

func TestFlowsWeightedEqualizeCompletionTimes(t *testing.T) {
	// Same unit backlog on both sides, but group 0's units are four times
	// as heavy. Unit-count Flows sees perfect balance; FlowsWeighted sees
	// group 0 holding 4x the work and shifts weight left-to-right.
	sums := []Summary{
		{Group: 0, Rate: 10, Backlog: 100, Weight: 400},
		{Group: 1, Rate: 10, Backlog: 100, Weight: 100},
	}
	if f := (Diffuser{Alpha: 1}).Flows(sums); f[0] != 0 {
		t.Fatalf("unit-count flow %d, want 0 (backlogs equal)", f[0])
	}
	flows := Diffuser{Alpha: 1}.FlowsWeighted(sums)
	if len(flows) != 1 || flows[0] <= 0 {
		t.Fatalf("weighted flows = %v, want one left-to-right shift", flows)
	}
	tl := (400 - flows[0]) / 10
	tr := (100 + flows[0]) / 10
	if math.Abs(tl-tr) > 1e-9 {
		t.Fatalf("weighted completion times %.2f vs %.2f not equalized", tl, tr)
	}
}

func TestFlowsWeightedUnderRelaxed(t *testing.T) {
	sums := []Summary{
		{Group: 0, Rate: 10, Backlog: 20, Weight: 200},
		{Group: 1, Rate: 10, Backlog: 0, Weight: 0},
	}
	full := Diffuser{Alpha: 1}.FlowsWeighted(sums)[0]
	half := Diffuser{Alpha: 0.5}.FlowsWeighted(sums)[0]
	if full != 100 {
		t.Fatalf("full correction moved %g, want 100", full)
	}
	if half != 50 {
		t.Fatalf("half correction moved %g, want 50", half)
	}
}

func TestFlowsWeightedClamp(t *testing.T) {
	// The middle group's small weighted backlog must not be overdrawn by
	// both neighbors draining it in the same exchange.
	sums := []Summary{
		{Group: 0, Rate: 100, Backlog: 0, Weight: 0},
		{Group: 1, Rate: 1, Backlog: 1, Weight: 3},
		{Group: 2, Rate: 100, Backlog: 0, Weight: 0},
	}
	flows := Diffuser{Alpha: 1}.FlowsWeighted(sums)
	prov := []float64{0, 3, 0}
	for b, f := range flows {
		prov[b] -= f
		prov[b+1] += f
	}
	for g, w := range prov {
		if w < 0 {
			t.Fatalf("group %d driven to weight %g (flows %v)", g, w, flows)
		}
	}
}

func TestFlowsWeightedDeadGroupDrains(t *testing.T) {
	// A group with no measured rate pushes its weighted backlog to the
	// live neighbor rather than wedging on an infinite completion time.
	sums := []Summary{
		{Group: 0, Rate: 0, Backlog: 4, Weight: 40},
		{Group: 1, Rate: 10, Backlog: 1, Weight: 10},
	}
	flows := Diffuser{Alpha: 0.5}.FlowsWeighted(sums)
	if len(flows) != 1 || flows[0] <= 0 {
		t.Fatalf("flows = %v, want positive drain from dead group", flows)
	}
}
