//go:build !race

package hier

const raceDetector = false
