//go:build race

package hier

// raceDetector reports whether the race detector is compiled in; soak
// tests scale their iteration budgets down to absorb its slowdown.
const raceDetector = true
