// Package hier is the two-level load-balancing topology: slaves are
// partitioned into contiguous groups, each led by its lowest-id member,
// and whole block ranges shift across group boundaries by a first-order
// diffusive scheme (after Demirel & Sbalzarini, "Balancing indivisible
// real-valued loads in arbitrary networks").
//
// The paper's single master collects every slave's status and re-plans
// every round, so coordination is O(slaves) on the critical path. The
// hierarchy splits that work: the existing balancer runs *within* each
// group every period, while groups exchange only aggregate rate/backlog
// summaries on a slower cadence. Because our loop-carried dependences
// already force adjacent-only, block-preserving movement, contiguous
// groups map directly onto the diffusive scheme's neighbor topology: the
// group chain is a path graph, and an inter-group shift is an ordinary
// adjacent move across the boundary between the last slave of one group
// and the first slave of the next.
package hier

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Typed validation errors. Callers classify with errors.Is; every
// constructor error wraps exactly one of these sentinels.
var (
	// ErrNoGroups rejects a group count below one.
	ErrNoGroups = errors.New("hier: need at least one group")
	// ErrTooManyGroups rejects more groups than slaves (some group would
	// be empty).
	ErrTooManyGroups = errors.New("hier: more groups than slaves")
	// ErrEmptyGroup rejects an explicit group with no members.
	ErrEmptyGroup = errors.New("hier: empty group")
	// ErrNonContiguous rejects explicit ranges that overlap, leave gaps,
	// run backwards, or fail to cover exactly [0, slaves).
	ErrNonContiguous = errors.New("hier: groups must tile the slave range contiguously")
)

// Partition is a contiguous split of slaves 0..n-1 into groups. Group g
// owns the id range [Start(g), End(g)); its leader is Start(g), the
// lowest member id. The zero value is not usable; build one with Split,
// FromSizes or FromRanges.
type Partition struct {
	starts []int // group -> first member id; one extra entry = slave count
}

// Split partitions n slaves into the given number of contiguous groups,
// as evenly as possible (the same largest-first rounding as the initial
// BLOCK data distribution: group g starts at g*n/groups).
func Split(slaves, groups int) (*Partition, error) {
	if groups < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrNoGroups, groups)
	}
	if slaves < 1 {
		return nil, fmt.Errorf("%w: %d slaves", ErrTooManyGroups, slaves)
	}
	if groups > slaves {
		return nil, fmt.Errorf("%w: %d groups over %d slaves", ErrTooManyGroups, groups, slaves)
	}
	p := &Partition{starts: make([]int, groups+1)}
	for g := 0; g <= groups; g++ {
		p.starts[g] = g * slaves / groups
	}
	return p, nil
}

// FromSizes builds a partition from explicit per-group member counts.
func FromSizes(sizes []int) (*Partition, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("%w: no sizes", ErrNoGroups)
	}
	p := &Partition{starts: make([]int, len(sizes)+1)}
	for g, sz := range sizes {
		if sz < 1 {
			return nil, fmt.Errorf("%w: group %d has size %d", ErrEmptyGroup, g, sz)
		}
		p.starts[g+1] = p.starts[g] + sz
	}
	return p, nil
}

// FromRanges builds a partition from explicit [lo, hi) member ranges,
// which must tile [0, slaves) exactly, in order and without gaps or
// overlap.
func FromRanges(ranges [][2]int, slaves int) (*Partition, error) {
	if len(ranges) == 0 {
		return nil, fmt.Errorf("%w: no ranges", ErrNoGroups)
	}
	p := &Partition{starts: make([]int, len(ranges)+1)}
	next := 0
	for g, r := range ranges {
		lo, hi := r[0], r[1]
		if hi <= lo {
			return nil, fmt.Errorf("%w: group %d range [%d,%d)", ErrEmptyGroup, g, lo, hi)
		}
		if lo != next {
			return nil, fmt.Errorf("%w: group %d starts at %d, want %d", ErrNonContiguous, g, lo, next)
		}
		p.starts[g] = lo
		next = hi
	}
	if next != slaves {
		return nil, fmt.Errorf("%w: ranges cover [0,%d), want [0,%d)", ErrNonContiguous, next, slaves)
	}
	p.starts[len(ranges)] = slaves
	return p, nil
}

// Groups returns the number of groups.
func (p *Partition) Groups() int { return len(p.starts) - 1 }

// Slaves returns the number of partitioned slave ids.
func (p *Partition) Slaves() int { return p.starts[len(p.starts)-1] }

// Start returns the first member id of group g.
func (p *Partition) Start(g int) int { return p.starts[g] }

// End returns one past the last member id of group g.
func (p *Partition) End(g int) int { return p.starts[g+1] }

// Size returns the member count of group g.
func (p *Partition) Size(g int) int { return p.starts[g+1] - p.starts[g] }

// Leader returns group g's leader: its lowest member id.
func (p *Partition) Leader(g int) int { return p.starts[g] }

// Leaders returns every group's leader id, ascending.
func (p *Partition) Leaders() []int {
	out := make([]int, p.Groups())
	for g := range out {
		out[g] = p.starts[g]
	}
	return out
}

// Members returns group g's member ids, ascending.
func (p *Partition) Members(g int) []int {
	out := make([]int, 0, p.Size(g))
	for i := p.starts[g]; i < p.starts[g+1]; i++ {
		out = append(out, i)
	}
	return out
}

// GroupOf returns the group owning the slave id. Ids past the configured
// range (joiner slots admitted after the partition was built) fold into
// the last group, so an elastic membership never escapes the topology.
func (p *Partition) GroupOf(slave int) int {
	if slave < 0 {
		panic(fmt.Sprintf("hier: negative slave id %d", slave))
	}
	if slave >= p.Slaves() {
		return p.Groups() - 1
	}
	// starts is ascending; find the last start <= slave.
	g := sort.SearchInts(p.starts, slave+1) - 1
	return g
}

// IsLeader reports whether the slave id leads its group.
func (p *Partition) IsLeader(slave int) bool {
	g := p.GroupOf(slave)
	return p.starts[g] == slave
}

// String renders the partition as its group ranges.
func (p *Partition) String() string {
	s := ""
	for g := 0; g < p.Groups(); g++ {
		if g > 0 {
			s += " "
		}
		s += fmt.Sprintf("[%d,%d)", p.Start(g), p.End(g))
	}
	return s
}

// RosterLeaders elects one leader per group from an arbitrary id roster
// by rank: ids are sorted ascending, split into contiguous rank groups,
// and each group's lowest-ranked id leads. This is the distributed
// runtime's election rule — every process that knows the roster computes
// the same leaders without a protocol round.
func RosterLeaders(ids []int, groups int) ([]int, error) {
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	p, err := Split(len(sorted), groups)
	if err != nil {
		return nil, err
	}
	leaders := make([]int, groups)
	for g := range leaders {
		leaders[g] = sorted[p.Leader(g)]
	}
	return leaders, nil
}

// Summary is one group's aggregate state, exchanged between adjacent
// leaders on the slow cadence: the sum of its members' filtered
// computation rates and the active work units currently inside the
// group's block range.
type Summary struct {
	Group   int
	Rate    float64 // aggregate units/second of the group's members
	Backlog int     // active units assigned to the group
	Members int     // live member count
	// Weight is the group's backlog in learned cost-model units (the sum
	// of its active units' relative weights). Zero on uniform-cost runs;
	// FlowsWeighted uses it in place of the unit count so an expensive
	// block range counts as the work it actually is.
	Weight float64
}

// Diffuser computes first-order diffusive flows along the group chain.
// For each boundary between adjacent groups L and R the balanced
// exchange is
//
//	x* = (tL − tR) · RL·RR/(RL+RR)
//
// where t = Backlog/Rate is the group's projected completion time —
// the flow that equalizes the two completion times in one step. Alpha
// under-relaxes it (0 < Alpha ≤ 1): full correction every exchange
// overshoots when rates drift between cadences, so the scheme moves a
// fraction and converges geometrically, exactly like a diffusion
// iteration on a path graph.
type Diffuser struct {
	Alpha float64
}

// pairFlow is the unclamped balanced exchange across one boundary;
// positive shifts units left-to-right.
func (d Diffuser) pairFlow(l, r Summary) float64 {
	lr, rr := l.Rate, r.Rate
	lb, rb := float64(l.Backlog), float64(r.Backlog)
	switch {
	case lr > 0 && rr > 0:
		return (lb/lr - rb/rr) * (lr * rr / (lr + rr))
	case lr <= 0 && rr > 0:
		// The left group measures no progress: its completion time is
		// unbounded, so push its whole backlog toward the live side (the
		// clamp and Alpha keep the actual shift gradual).
		return lb
	case rr <= 0 && lr > 0:
		return -rb
	default:
		// Neither side measures progress: split the difference evenly.
		return (lb - rb) / 2
	}
}

// Flows returns the per-boundary integer shifts for the group chain:
// flows[b] units cross the boundary between groups b and b+1, positive
// meaning left-to-right. Flows are computed left to right against
// provisional backlogs, so no group is ever driven negative even when
// both neighbors drain it in the same exchange. The computation is a
// pure function of the summaries — every observer derives identical
// shifts.
func (d Diffuser) Flows(sums []Summary) []int {
	alpha := d.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	if len(sums) < 2 {
		return nil
	}
	prov := make([]int, len(sums))
	for i, s := range sums {
		prov[i] = s.Backlog
	}
	flows := make([]int, len(sums)-1)
	for b := 0; b < len(flows); b++ {
		f := int(math.Round(alpha * d.pairFlow(sums[b], sums[b+1])))
		if f > prov[b] {
			f = prov[b]
		}
		if -f > prov[b+1] {
			f = -prov[b+1]
		}
		flows[b] = f
		prov[b] -= f
		prov[b+1] += f
	}
	return flows
}

// pairFlowW is pairFlow over weighted backlogs: rates are in weight units
// per second and the returned flow is an amount of weight to shift.
func (d Diffuser) pairFlowW(l, r Summary) float64 {
	lr, rr := l.Rate, r.Rate
	lb, rb := l.Weight, r.Weight
	switch {
	case lr > 0 && rr > 0:
		return (lb/lr - rb/rr) * (lr * rr / (lr + rr))
	case lr <= 0 && rr > 0:
		return lb
	case rr <= 0 && lr > 0:
		return -rb
	default:
		return (lb - rb) / 2
	}
}

// FlowsWeighted is Flows under a learned cost model: summaries carry
// weighted backlogs (Summary.Weight, rates in weight units per second) and
// the returned per-boundary flows are real-valued amounts of weight,
// positive meaning left-to-right. The caller converts weight into whole
// boundary units against its unit weight vector; clamping to provisional
// weighted backlogs keeps no group overdrawn, mirroring Flows.
func (d Diffuser) FlowsWeighted(sums []Summary) []float64 {
	alpha := d.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	if len(sums) < 2 {
		return nil
	}
	prov := make([]float64, len(sums))
	for i, s := range sums {
		prov[i] = s.Weight
	}
	flows := make([]float64, len(sums)-1)
	for b := 0; b < len(flows); b++ {
		f := alpha * d.pairFlowW(sums[b], sums[b+1])
		if f > prov[b] {
			f = prov[b]
		}
		if -f > prov[b+1] {
			f = -prov[b+1]
		}
		flows[b] = f
		prov[b] -= f
		prov[b+1] += f
	}
	return flows
}

// ApplyFlows returns the per-group backlogs after the given boundary
// flows. It panics if a flow drives a backlog negative — Flows never
// emits such a schedule.
func ApplyFlows(backlogs, flows []int) []int {
	out := append([]int(nil), backlogs...)
	for b, f := range flows {
		out[b] -= f
		out[b+1] += f
		if out[b] < 0 || out[b+1] < 0 {
			panic(fmt.Sprintf("hier: flow %d across boundary %d overdraws backlog", f, b))
		}
	}
	return out
}
