package hier

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestSplitEven(t *testing.T) {
	p, err := Split(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Groups() != 4 || p.Slaves() != 16 {
		t.Fatalf("got %d groups over %d slaves", p.Groups(), p.Slaves())
	}
	for g := 0; g < 4; g++ {
		if p.Size(g) != 4 {
			t.Errorf("group %d size %d, want 4", g, p.Size(g))
		}
		if p.Leader(g) != 4*g {
			t.Errorf("group %d leader %d, want %d", g, p.Leader(g), 4*g)
		}
	}
	if got := p.Members(2); !reflect.DeepEqual(got, []int{8, 9, 10, 11}) {
		t.Errorf("members(2) = %v", got)
	}
}

func TestSplitUneven(t *testing.T) {
	p, err := Split(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for g := 0; g < p.Groups(); g++ {
		sz := p.Size(g)
		if sz < 3 || sz > 4 {
			t.Errorf("group %d size %d, want 3 or 4", g, sz)
		}
		total += sz
	}
	if total != 10 {
		t.Fatalf("sizes sum to %d", total)
	}
	// Every id maps to the group whose range covers it, and leaders
	// identify themselves.
	for id := 0; id < 10; id++ {
		g := p.GroupOf(id)
		if id < p.Start(g) || id >= p.End(g) {
			t.Errorf("GroupOf(%d) = %d with range [%d,%d)", id, g, p.Start(g), p.End(g))
		}
		if p.IsLeader(id) != (id == p.Leader(g)) {
			t.Errorf("IsLeader(%d) inconsistent", id)
		}
	}
}

func TestGroupOfJoinerFoldsIntoLastGroup(t *testing.T) {
	p, err := Split(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g := p.GroupOf(11); g != 1 {
		t.Fatalf("joiner slot mapped to group %d, want last group 1", g)
	}
}

func TestSplitErrors(t *testing.T) {
	if _, err := Split(4, 0); !errors.Is(err, ErrNoGroups) {
		t.Errorf("Split(4,0) = %v, want ErrNoGroups", err)
	}
	if _, err := Split(4, 5); !errors.Is(err, ErrTooManyGroups) {
		t.Errorf("Split(4,5) = %v, want ErrTooManyGroups", err)
	}
	if _, err := Split(0, 1); !errors.Is(err, ErrTooManyGroups) {
		t.Errorf("Split(0,1) = %v, want ErrTooManyGroups", err)
	}
	if _, err := FromSizes(nil); !errors.Is(err, ErrNoGroups) {
		t.Errorf("FromSizes(nil) = %v, want ErrNoGroups", err)
	}
	if _, err := FromSizes([]int{2, 0, 3}); !errors.Is(err, ErrEmptyGroup) {
		t.Errorf("FromSizes with empty group = %v, want ErrEmptyGroup", err)
	}
}

func TestFromRanges(t *testing.T) {
	p, err := FromRanges([][2]int{{0, 3}, {3, 5}, {5, 9}}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if p.Groups() != 3 || p.Size(1) != 2 || p.Leader(2) != 5 {
		t.Fatalf("bad partition %v", p)
	}

	cases := []struct {
		name   string
		ranges [][2]int
		slaves int
		want   error
	}{
		{"gap", [][2]int{{0, 3}, {4, 8}}, 8, ErrNonContiguous},
		{"overlap", [][2]int{{0, 4}, {3, 8}}, 8, ErrNonContiguous},
		{"short", [][2]int{{0, 3}, {3, 6}}, 8, ErrNonContiguous},
		{"backwards", [][2]int{{0, 3}, {5, 3}}, 8, ErrEmptyGroup},
		{"empty", [][2]int{{0, 3}, {3, 3}, {3, 8}}, 8, ErrEmptyGroup},
		{"none", nil, 8, ErrNoGroups},
	}
	for _, tc := range cases {
		if _, err := FromRanges(tc.ranges, tc.slaves); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestRosterLeaders(t *testing.T) {
	// Election is by rank over the sorted roster, not by raw id value.
	leaders, err := RosterLeaders([]int{7, 2, 9, 0, 5, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(leaders, []int{0, 3, 7}) {
		t.Fatalf("leaders = %v, want [0 3 7]", leaders)
	}
	if _, err := RosterLeaders([]int{1}, 2); !errors.Is(err, ErrTooManyGroups) {
		t.Fatalf("oversubscribed roster: got %v", err)
	}
}

func TestFlowsEqualizeCompletionTimes(t *testing.T) {
	// Group 0 is twice as fast with the same backlog: work should flow
	// right-to-left... no — group 1 is slower, so its completion time is
	// larger and units flow from group 1 to group 0 (negative flow).
	sums := []Summary{
		{Group: 0, Rate: 20, Backlog: 100},
		{Group: 1, Rate: 10, Backlog: 100},
	}
	flows := Diffuser{Alpha: 1}.Flows(sums)
	if len(flows) != 1 || flows[0] >= 0 {
		t.Fatalf("flows = %v, want one right-to-left shift", flows)
	}
	after := ApplyFlows([]int{100, 100}, flows)
	tl := float64(after[0]) / 20
	tr := float64(after[1]) / 10
	if math.Abs(tl-tr) > 0.2 {
		t.Fatalf("completion times %.2f vs %.2f not equalized (flows %v)", tl, tr, flows)
	}
}

func TestFlowsUnderRelaxed(t *testing.T) {
	sums := []Summary{
		{Group: 0, Rate: 10, Backlog: 200},
		{Group: 1, Rate: 10, Backlog: 0},
	}
	full := Diffuser{Alpha: 1}.Flows(sums)[0]
	half := Diffuser{Alpha: 0.5}.Flows(sums)[0]
	if full != 100 {
		t.Fatalf("full correction moved %d, want 100", full)
	}
	if half != 50 {
		t.Fatalf("half correction moved %d, want 50", half)
	}
}

func TestFlowsClampToBacklog(t *testing.T) {
	// The middle group has 1 unit but both neighbors are idle and fast:
	// flows must not overdraw it.
	sums := []Summary{
		{Group: 0, Rate: 100, Backlog: 0},
		{Group: 1, Rate: 1, Backlog: 1},
		{Group: 2, Rate: 100, Backlog: 0},
	}
	flows := Diffuser{Alpha: 1}.Flows(sums)
	after := ApplyFlows([]int{0, 1, 0}, flows)
	for g, b := range after {
		if b < 0 {
			t.Fatalf("group %d driven to backlog %d (flows %v)", g, b, flows)
		}
	}
}

func TestFlowsDeadGroupDrains(t *testing.T) {
	// A group with no measured rate and positive backlog pushes work to
	// a live neighbor instead of wedging on an infinite completion time.
	sums := []Summary{
		{Group: 0, Rate: 0, Backlog: 40},
		{Group: 1, Rate: 10, Backlog: 10},
	}
	flows := Diffuser{Alpha: 0.5}.Flows(sums)
	if flows[0] != 20 {
		t.Fatalf("flows = %v, want [20]", flows)
	}
	// Both dead: even out backlogs.
	sums = []Summary{
		{Group: 0, Rate: 0, Backlog: 40},
		{Group: 1, Rate: 0, Backlog: 0},
	}
	if f := (Diffuser{Alpha: 1}).Flows(sums); f[0] != 20 {
		t.Fatalf("both-dead flows = %v, want [20]", f)
	}
}

func TestFlowsDeterministic(t *testing.T) {
	sums := []Summary{
		{Group: 0, Rate: 3.7, Backlog: 41},
		{Group: 1, Rate: 9.1, Backlog: 17},
		{Group: 2, Rate: 0.4, Backlog: 66},
		{Group: 3, Rate: 5.5, Backlog: 3},
	}
	d := Diffuser{Alpha: 0.5}
	first := d.Flows(sums)
	for i := 0; i < 100; i++ {
		if got := d.Flows(sums); !reflect.DeepEqual(got, first) {
			t.Fatalf("iteration %d diverged: %v vs %v", i, got, first)
		}
	}
}

func TestFlowsConverge(t *testing.T) {
	// Iterating exchange rounds on a static chain must converge toward
	// proportional backlogs (all completion times equal), the fixed point
	// of the diffusion.
	backlogs := []int{400, 0, 0, 0}
	rates := []float64{5, 10, 20, 5}
	d := Diffuser{Alpha: 0.5}
	for iter := 0; iter < 60; iter++ {
		sums := make([]Summary, len(backlogs))
		for g := range sums {
			sums[g] = Summary{Group: g, Rate: rates[g], Backlog: backlogs[g]}
		}
		backlogs = ApplyFlows(backlogs, d.Flows(sums))
	}
	var worst, best float64 = 0, math.Inf(1)
	for g, b := range backlogs {
		ct := float64(b) / rates[g]
		if ct > worst {
			worst = ct
		}
		if ct < best {
			best = ct
		}
	}
	if worst-best > 1.5 {
		t.Fatalf("did not converge: backlogs %v (completion spread %.2f)", backlogs, worst-best)
	}
}

// TestFlowsSoak drives the diffuser over randomized chains — varied
// lengths, dead groups, skewed rates and backlogs — and checks the
// invariants every schedule must keep: work is conserved and no group
// is ever overdrawn, across repeated exchanges. The case budget shrinks
// under the race detector's slowdown.
func TestFlowsSoak(t *testing.T) {
	cases := 2000
	if raceDetector {
		cases = 200
	}
	rng := rand.New(rand.NewSource(7))
	for c := 0; c < cases; c++ {
		groups := 2 + rng.Intn(31)
		alpha := 0.1 + 0.9*rng.Float64()
		rates := make([]float64, groups)
		backlogs := make([]int, groups)
		total := 0
		for g := range rates {
			if rng.Intn(8) > 0 { // ~1 in 8 groups measures no progress
				rates[g] = rng.Float64() * 100
			}
			backlogs[g] = rng.Intn(500)
			total += backlogs[g]
		}
		d := Diffuser{Alpha: alpha}
		for it := 0; it < 20; it++ {
			sums := make([]Summary, groups)
			for g := range sums {
				sums[g] = Summary{Group: g, Rate: rates[g], Backlog: backlogs[g]}
			}
			flows := d.Flows(sums)
			backlogs = ApplyFlows(backlogs, flows) // panics on overdraw
		}
		sum := 0
		for g, b := range backlogs {
			if b < 0 {
				t.Fatalf("case %d: group %d driven negative: %v", c, g, backlogs)
			}
			sum += b
		}
		if sum != total {
			t.Fatalf("case %d: backlog not conserved: had %d, left %d", c, total, sum)
		}
	}
}
