// Package vtime implements a conservative discrete-event simulation kernel
// with goroutine-backed processes.
//
// The kernel advances a single virtual clock. Processes are ordinary Go
// functions running on their own goroutines, but the kernel guarantees that
// at most one process executes at any instant: a process runs until it
// blocks in Sleep or Recv, at which point control returns to the kernel,
// which dispatches the next event in timestamp order. This gives sequential,
// deterministic semantics while letting simulation code be written in a
// natural blocking style (the same runtime code can later be pointed at a
// wall-clock environment).
//
// Time is represented as time.Duration since the start of the simulation.
package vtime

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Kernel owns the virtual clock, the event queue, and all processes.
// Create one with NewKernel, spawn processes with Spawn, then call Run.
type Kernel struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64 // tie-breaker for events with equal timestamps
	procs   []*Proc
	limit   time.Duration // 0 means no limit
	stopped bool
}

// NewKernel returns an empty kernel at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// SetLimit sets a maximum virtual time. Run returns ErrLimit once the clock
// would pass the limit; a zero limit (the default) disables the check.
func (k *Kernel) SetLimit(limit time.Duration) { k.limit = limit }

// Now reports the current virtual time. Outside Run it reports the time at
// which the simulation stopped.
func (k *Kernel) Now() time.Duration { return k.now }

// ErrLimit is returned by Run when the virtual-time limit is exceeded.
var ErrLimit = fmt.Errorf("vtime: virtual time limit exceeded")

// DeadlockError is returned by Run when no events remain but processes are
// still blocked in Recv.
type DeadlockError struct {
	Time    time.Duration
	Blocked []string // names of the blocked processes
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("vtime: deadlock at %v: blocked processes %v", e.Time, e.Blocked)
}

type eventKind int

const (
	evWake    eventKind = iota // resume a sleeping process
	evDeliver                  // append a message to a mailbox
	evStart                    // first resume of a newly spawned process
)

type event struct {
	at   time.Duration
	seq  uint64
	kind eventKind
	proc *Proc    // evWake, evStart
	mb   *Mailbox // evDeliver
	msg  Message  // evDeliver
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

func (k *Kernel) post(ev *event) {
	ev.seq = k.seq
	k.seq++
	heap.Push(&k.queue, ev)
}

// procState tracks why a process is not currently running.
type procState int

const (
	stateNew      procState = iota // spawned, not yet started
	stateRunning                   // currently executing (at most one)
	stateSleeping                  // waiting for an evWake
	stateBlocked                   // waiting for a mailbox delivery
	stateDone                      // function returned
)

// Proc is a simulation process. All methods must be called from the
// process's own goroutine (i.e. from within the function passed to Spawn).
type Proc struct {
	k      *Kernel
	name   string
	state  procState
	resume chan struct{} // kernel -> proc: run
	yield  chan struct{} // proc -> kernel: blocked or done
	waitMB *Mailbox      // mailbox this proc is blocked on, if any
}

// Name returns the name given to Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// Spawn registers fn as a new process. It may be called before Run or from
// within a running process; in the latter case the new process starts at the
// current virtual time, after the spawning process next yields.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		state:  stateNew,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.post(&event{at: k.now, kind: evStart, proc: p})
	go func() {
		<-p.resume // wait for the kernel to start us
		fn(p)
		p.state = stateDone
		p.yield <- struct{}{}
	}()
	return p
}

// runProc transfers control to p and waits until it yields.
func (k *Kernel) runProc(p *Proc) {
	p.state = stateRunning
	p.resume <- struct{}{}
	<-p.yield
}

// block yields control to the kernel and waits to be resumed.
func (p *Proc) block(s procState) {
	p.state = s
	p.yield <- struct{}{}
	<-p.resume
	p.state = stateRunning
}

// Sleep advances the process's local time by d. A non-positive d yields to
// other processes scheduled at the current instant without advancing time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.k.post(&event{at: p.k.now + d, kind: evWake, proc: p})
	p.block(stateSleeping)
}

// Yield gives other processes scheduled at the current instant a chance to
// run. Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }

// Run executes events until none remain, the time limit is exceeded, or a
// deadlock is detected. It returns nil on normal completion (all processes
// finished or the queue drained with no process blocked).
func (k *Kernel) Run() error {
	for len(k.queue) > 0 {
		ev := heap.Pop(&k.queue).(*event)
		if k.limit > 0 && ev.at > k.limit {
			k.now = k.limit
			return ErrLimit
		}
		if ev.at > k.now {
			k.now = ev.at
		}
		switch ev.kind {
		case evWake, evStart:
			if ev.proc.state == stateDone {
				break
			}
			k.runProc(ev.proc)
		case evDeliver:
			mb := ev.mb
			mb.q = append(mb.q, ev.msg)
			if mb.waiter != nil {
				w := mb.waiter
				mb.waiter = nil
				w.waitMB = nil
				k.runProc(w)
			}
		}
	}
	var blocked []string
	for _, p := range k.procs {
		if p.state == stateBlocked || p.state == stateSleeping {
			blocked = append(blocked, p.name)
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Time: k.now, Blocked: blocked}
	}
	return nil
}

// Message is a datum delivered to a mailbox.
type Message struct {
	From string        // name of the sending process ("" if sent from outside)
	At   time.Duration // delivery time
	Data interface{}
}

// Mailbox is a multi-producer, single-consumer message queue with virtual-
// time delivery. At most one process may block in Recv on a mailbox at a
// time (the usual pattern is one mailbox per receiving process).
type Mailbox struct {
	k      *Kernel
	name   string
	q      []Message
	waiter *Proc
}

// NewMailbox creates a mailbox attached to the kernel.
func (k *Kernel) NewMailbox(name string) *Mailbox {
	return &Mailbox{k: k, name: name}
}

// Name returns the mailbox name.
func (mb *Mailbox) Name() string { return mb.name }

// Len reports the number of queued messages.
func (mb *Mailbox) Len() int { return len(mb.q) }

// Send schedules delivery of data to the mailbox after the given delay,
// measured from the current virtual time. It does not block the sender.
func (p *Proc) Send(mb *Mailbox, data interface{}, delay time.Duration) {
	if delay < 0 {
		delay = 0
	}
	at := p.k.now + delay
	p.k.post(&event{at: at, kind: evDeliver, mb: mb, msg: Message{From: p.name, At: at, Data: data}})
}

// Inject delivers a message from outside any process (e.g. test setup) at
// the given absolute virtual time.
func (k *Kernel) Inject(mb *Mailbox, data interface{}, at time.Duration) {
	if at < k.now {
		at = k.now
	}
	k.post(&event{at: at, kind: evDeliver, mb: mb, msg: Message{At: at, Data: data}})
}

// Recv blocks until a message is available and returns the oldest one.
func (p *Proc) Recv(mb *Mailbox) Message {
	for len(mb.q) == 0 {
		if mb.waiter != nil {
			panic(fmt.Sprintf("vtime: mailbox %q already has waiter %q; second Recv from %q", mb.name, mb.waiter.name, p.name))
		}
		mb.waiter = p
		p.waitMB = mb
		p.block(stateBlocked)
	}
	m := mb.q[0]
	mb.q = mb.q[1:]
	return m
}

// TryRecv returns the oldest queued message without blocking. ok is false
// if the mailbox is empty.
func (p *Proc) TryRecv(mb *Mailbox) (m Message, ok bool) {
	if len(mb.q) == 0 {
		return Message{}, false
	}
	m = mb.q[0]
	mb.q = mb.q[1:]
	return m, true
}
