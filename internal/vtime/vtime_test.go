package vtime

import (
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var at []time.Duration
	k.Spawn("a", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		at = append(at, p.Now())
		p.Sleep(5 * time.Millisecond)
		at = append(at, p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(at) != 2 || at[0] != 10*time.Millisecond || at[1] != 15*time.Millisecond {
		t.Fatalf("timestamps = %v, want [10ms 15ms]", at)
	}
	if k.Now() != 15*time.Millisecond {
		t.Fatalf("final time = %v, want 15ms", k.Now())
	}
}

func TestNegativeSleepTreatedAsZero(t *testing.T) {
	k := NewKernel()
	k.Spawn("a", func(p *Proc) {
		p.Sleep(-time.Second)
		if p.Now() != 0 {
			t.Errorf("time moved backwards or forwards: %v", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestInterleavingIsTimestampOrdered(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("slow", func(p *Proc) {
		p.Sleep(20 * time.Millisecond)
		order = append(order, "slow")
	})
	k.Spawn("fast", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		order = append(order, "fast")
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "fast" || order[1] != "slow" {
		t.Fatalf("order = %v, want [fast slow]", order)
	}
}

func TestEqualTimestampsRunInPostOrder(t *testing.T) {
	k := NewKernel()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			p.Sleep(time.Millisecond)
			order = append(order, name)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSendRecvDelay(t *testing.T) {
	k := NewKernel()
	mb := k.NewMailbox("inbox")
	var got Message
	k.Spawn("sender", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		p.Send(mb, "hello", 7*time.Millisecond)
	})
	k.Spawn("receiver", func(p *Proc) {
		got = p.Recv(mb)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got.Data != "hello" {
		t.Fatalf("data = %v, want hello", got.Data)
	}
	if got.At != 12*time.Millisecond {
		t.Fatalf("delivery at %v, want 12ms", got.At)
	}
	if got.From != "sender" {
		t.Fatalf("from = %q, want sender", got.From)
	}
}

func TestRecvBlocksUntilDelivery(t *testing.T) {
	k := NewKernel()
	mb := k.NewMailbox("inbox")
	var recvAt time.Duration
	k.Spawn("receiver", func(p *Proc) {
		p.Recv(mb)
		recvAt = p.Now()
	})
	k.Spawn("sender", func(p *Proc) {
		p.Sleep(30 * time.Millisecond)
		p.Send(mb, 1, 0)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if recvAt != 30*time.Millisecond {
		t.Fatalf("received at %v, want 30ms", recvAt)
	}
}

func TestMessagesDeliveredInOrder(t *testing.T) {
	k := NewKernel()
	mb := k.NewMailbox("inbox")
	var got []int
	k.Spawn("sender", func(p *Proc) {
		p.Send(mb, 1, 10*time.Millisecond)
		p.Send(mb, 2, 5*time.Millisecond) // arrives first
		p.Send(mb, 3, 10*time.Millisecond)
	})
	k.Spawn("receiver", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, p.Recv(mb).Data.(int))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{2, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestTryRecv(t *testing.T) {
	k := NewKernel()
	mb := k.NewMailbox("inbox")
	k.Spawn("p", func(p *Proc) {
		if _, ok := p.TryRecv(mb); ok {
			t.Error("TryRecv on empty mailbox returned ok")
		}
		p.Send(mb, 42, 0)
		p.Yield() // let delivery event fire
		m, ok := p.TryRecv(mb)
		if !ok || m.Data != 42 {
			t.Errorf("TryRecv = %v, %v; want 42, true", m.Data, ok)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	mb := k.NewMailbox("never")
	k.Spawn("stuck", func(p *Proc) {
		p.Recv(mb)
	})
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck" {
		t.Fatalf("blocked = %v, want [stuck]", de.Blocked)
	}
}

func TestVirtualTimeLimit(t *testing.T) {
	k := NewKernel()
	k.SetLimit(time.Second)
	k.Spawn("runaway", func(p *Proc) {
		for {
			p.Sleep(100 * time.Millisecond)
		}
	})
	if err := k.Run(); err != ErrLimit {
		t.Fatalf("Run = %v, want ErrLimit", err)
	}
	if k.Now() != time.Second {
		t.Fatalf("time = %v, want 1s", k.Now())
	}
}

func TestSpawnFromRunningProcess(t *testing.T) {
	k := NewKernel()
	var childAt time.Duration
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		k.Spawn("child", func(c *Proc) {
			childAt = c.Now()
		})
		p.Sleep(10 * time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if childAt != 10*time.Millisecond {
		t.Fatalf("child started at %v, want 10ms", childAt)
	}
}

func TestInjectFromOutside(t *testing.T) {
	k := NewKernel()
	mb := k.NewMailbox("inbox")
	k.Inject(mb, "external", 25*time.Millisecond)
	var at time.Duration
	k.Spawn("receiver", func(p *Proc) {
		m := p.Recv(mb)
		at = p.Now()
		if m.From != "" {
			t.Errorf("from = %q, want empty", m.From)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 25*time.Millisecond {
		t.Fatalf("received at %v, want 25ms", at)
	}
}

func TestManyProcessesDeterministic(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		mb := k.NewMailbox("sink")
		var order []string
		const n = 10
		for i := 0; i < n; i++ {
			i := i
			name := string(rune('a' + i))
			k.Spawn(name, func(p *Proc) {
				p.Sleep(time.Duration((i*7)%5) * time.Millisecond)
				p.Send(mb, name, time.Duration(i)*time.Microsecond)
			})
		}
		k.Spawn("collector", func(p *Proc) {
			for i := 0; i < n; i++ {
				order = append(order, p.Recv(mb).Data.(string))
			}
		})
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return order
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic order: %v vs %v", first, again)
			}
		}
	}
}

func TestDoubleRecvPanics(t *testing.T) {
	k := NewKernel()
	mb := k.NewMailbox("shared")
	k.Spawn("r1", func(p *Proc) { p.Recv(mb) })
	k.Spawn("r2", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("second Recv on same mailbox did not panic")
			}
			// Unblock r1 so the kernel can finish.
			p.Send(mb, 0, 0)
		}()
		p.Recv(mb)
	})
	_ = k.Run()
}
