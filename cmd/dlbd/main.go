// Command dlbd is the slave daemon of the distributed TCP runtime: one
// process per (virtual) workstation. It listens for a master's handshake,
// compiles the shipped program, runs the slave loop over real sockets, and
// keeps serving runs until terminated. Peers connect directly for work
// movement and boundary exchange — data never relays through the master.
//
// Usage:
//
//	dlbd -listen 127.0.0.1:7101 [-advertise host:port] [-drag 2.5] [-quiet]
//	dlbd -join 127.0.0.1:7100   # volunteer into a running master mid-run
//
// On startup the daemon prints "dlbd listening <addr>" on stdout; harnesses
// parse that line to learn the bound address when -listen uses port 0.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/netrun"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "listener address (masters handshake here, peers exchange work)")
	advertise := flag.String("advertise", "", "address peers should dial (default: the bound address)")
	join := flag.String("join", "", "master join listener to volunteer into at startup (elastic join)")
	drag := flag.Float64("drag", 1.0, "slow this daemon's computation by the given factor (emulated loaded machine)")
	cores := flag.Int("cores", 0, "kernel worker goroutines (0: use the master's setting, -1: all hardware cores)")
	kernel := flag.String("kernel", "", `execution tier override: "" uses the master's setting, else "interp", "kernel" or "aot"`)
	codec := flag.String("codec", "", `data-plane codec: "" accepts the master's offer (binary), "gob" pins this daemon to gob`)
	maxGroups := flag.Int("groups", 0, "admission cap on a run's hierarchical group count (0: unlimited)")
	grace := flag.Duration("grace", 30*time.Second, "how long SIGTERM waits for an in-flight run to drain before forcing teardown")
	quiet := flag.Bool("quiet", false, "suppress event logging on stderr")
	flag.Parse()

	logf := log.New(os.Stderr, "dlbd: ", log.Ltime|log.Lmicroseconds).Printf
	if *quiet {
		logf = func(string, ...interface{}) {}
	}
	srv, err := netrun.NewServer(netrun.ServerOptions{
		Listen:    *listen,
		Advertise: *advertise,
		Join:      *join,
		Drag:      *drag,
		Cores:     *cores,
		Kernel:    *kernel,
		MaxGroups: *maxGroups,
		Codec:     *codec,
		Logf:      logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlbd:", err)
		os.Exit(1)
	}
	fmt.Printf("dlbd listening %s\n", srv.Addr())

	// First signal: graceful — stop accepting runs, drain the in-flight
	// session (peer frames keep flowing through the still-open listener),
	// then close. A second signal forces immediate teardown.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logf("shutting down (draining, grace %v; signal again to force)", *grace)
		go func() {
			<-sig
			logf("forced shutdown")
			srv.Close()
		}()
		srv.Shutdown(*grace)
	}()
	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "dlbd:", err)
		os.Exit(1)
	}
}
