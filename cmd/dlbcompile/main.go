// Command dlbcompile runs the parallelizing compiler on a library program
// or a source file and prints the dependence analysis, Table 1 properties,
// and the generated SPMD program with its communication and load-balancing
// hooks.
//
// Usage:
//
//	dlbcompile [-deps] [-table1] [-file src.dlb] [-dist array:dim] [prog]
//
// where prog is one of: mm, sor, lu, jacobi, axpy, threshold-relax.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/lang"
	"repro/internal/loopir"
)

func specFor(name string) depend.DistSpec {
	switch name {
	case "mm":
		return depend.DistSpec{Dims: map[string]int{"c": 1, "b": 1}, Loops: []string{"j"}}
	case "sor":
		return depend.DistSpec{Dims: map[string]int{"b": 0}, Loops: []string{"j"}}
	case "lu":
		return depend.DistSpec{Dims: map[string]int{"a": 1}, Loops: []string{"j"}}
	case "jacobi":
		return depend.DistSpec{Dims: map[string]int{"a": 0, "anew": 0}, Loops: []string{"i", "i2"}}
	case "axpy":
		return depend.DistSpec{Dims: map[string]int{"x": 0, "y": 0}, Loops: []string{"i"}}
	case "threshold-relax":
		return depend.DistSpec{Dims: map[string]int{"v": 1}, Loops: []string{"j"}}
	}
	return depend.DistSpec{}
}

func main() {
	deps := flag.Bool("deps", false, "print the dependence analysis")
	table1 := flag.Bool("table1", false, "print Table 1 (application properties) for mm, sor, lu")
	file := flag.String("file", "", "compile a source file instead of a library program")
	distFlag := flag.String("dist", "", "distribution directive array:dim[,array:dim...] (for -file; default: automatic)")
	flag.Parse()

	if *table1 {
		printTable1()
		return
	}

	var prog *loopir.Program
	var spec depend.DistSpec
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		prog, err = lang.Parse(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s:%v\n", *file, err)
			os.Exit(1)
		}
		if *distFlag != "" {
			spec.Dims = map[string]int{}
			for _, part := range strings.Split(*distFlag, ",") {
				kv := strings.SplitN(part, ":", 2)
				if len(kv) != 2 {
					fmt.Fprintf(os.Stderr, "bad -dist entry %q (want array:dim)\n", part)
					os.Exit(1)
				}
				dim, err := strconv.Atoi(kv[1])
				if err != nil {
					fmt.Fprintf(os.Stderr, "bad -dist dimension in %q\n", part)
					os.Exit(1)
				}
				spec.Dims[kv[0]] = dim
			}
		}
	} else {
		name := "sor"
		if flag.NArg() > 0 {
			name = flag.Arg(0)
		}
		prog = loopir.Library()[name]
		if prog == nil {
			var names []string
			for n := range loopir.Library() {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Fprintf(os.Stderr, "unknown program %q; available: %v (or use -file)\n", name, names)
			os.Exit(1)
		}
		spec = specFor(name)
	}

	fmt.Println("=== sequential source ===")
	fmt.Println(loopir.Render(prog))

	analysis, err := depend.Analyze(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *deps {
		fmt.Println("=== dependences ===")
		for _, d := range analysis.Deps() {
			fmt.Println(" ", d)
		}
		fmt.Println()
	}
	if len(spec.Dims) > 0 {
		pr, err := analysis.PropertiesFor(spec)
		if err == nil {
			fmt.Println("=== application properties (Table 1 row) ===")
			fmt.Println(" ", pr)
			fmt.Println()
		}
	}

	plan, err := compile.Compile(prog, compile.Options{Dist: spec})
	if err != nil {
		fmt.Fprintln(os.Stderr, "compile:", err)
		os.Exit(1)
	}
	fmt.Println("=== generated SPMD program ===")
	fmt.Println(plan.Source)
}

func printTable1() {
	fmt.Printf("%-34s %-5s %-5s %-5s\n", "Property (of distributed loop)", "MM", "SOR", "LU")
	rows := map[string]depend.Properties{}
	for _, name := range []string{"mm", "sor", "lu"} {
		prog := loopir.Library()[name]
		a, err := depend.Analyze(prog)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pr, err := a.PropertiesFor(specFor(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rows[name] = pr
	}
	mm, sor, lu := rows["mm"].Row(), rows["sor"].Row(), rows["lu"].Row()
	for i, p := range depend.PropertyNames {
		fmt.Printf("%-34s %-5s %-5s %-5s\n", p, mm[i], sor[i], lu[i])
	}
}
