// Command dlbsvc is the multi-tenant cluster front door: one long-lived
// process that owns a shared pool of slave daemons and serves the job API
// over HTTP (submit, status, result, cancel, /statsz). Jobs are compiled
// plans shipped as source + directive, scheduled by priority class and
// weighted tenant fairness; high-priority submissions preempt running
// lower-priority jobs through the checkpoint machinery.
//
// Usage:
//
//	dlbsvc -slaves 127.0.0.1:7101,127.0.0.1:7102   # lease external dlbd daemons
//	dlbsvc -pool 4                                  # spawn an in-process pool (dev mode)
//
// On startup it prints "dlbsvc listening <addr>" on stdout; harnesses
// parse that line when -listen uses port 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/netrun"
	"repro/internal/svc"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "HTTP listener address for the job API")
	slaves := flag.String("slaves", "", "comma-separated dlbd addresses forming the shared pool")
	pool := flag.Int("pool", 0, "spawn this many in-process slave daemons instead of -slaves (dev mode)")
	drag := flag.Float64("drag", 1.0, "slow in-process pool daemons by this factor (dev mode)")
	maxQueue := flag.Int("max-queue", 64, "waiting-set bound; submissions beyond it get 429")
	maxGroups := flag.Int("groups", 0, "admission cap on a job's hierarchical group count (0: unlimited)")
	kernel := flag.String("kernel", "", `default execution tier for jobs that do not name one: "interp", "kernel" or "aot"`)
	costModel := flag.String("costmodel", "", `default balancer cost model for jobs that do not name one: "uniform" or "learned"`)
	weights := flag.String("weights", "", `per-tenant fairness weights, e.g. "alice=2,bob=1"`)
	grace := flag.Duration("grace", 30*time.Second, "how long shutdown waits for running jobs to checkpoint and release")
	quiet := flag.Bool("quiet", false, "suppress event logging on stderr")
	flag.Parse()

	logf := log.New(os.Stderr, "dlbsvc: ", log.Ltime|log.Lmicroseconds).Printf
	if *quiet {
		logf = func(string, ...interface{}) {}
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dlbsvc:", err)
		os.Exit(1)
	}

	var addrs []string
	var inproc []*netrun.Server
	switch {
	case *pool > 0 && *slaves != "":
		fail(fmt.Errorf("-pool and -slaves are mutually exclusive"))
	case *pool > 0:
		for i := 0; i < *pool; i++ {
			srv, err := netrun.NewServer(netrun.ServerOptions{Drag: *drag})
			if err != nil {
				fail(err)
			}
			go srv.Serve()
			inproc = append(inproc, srv)
			addrs = append(addrs, srv.Addr())
		}
		logf("spawned %d in-process slave daemons", *pool)
	case *slaves != "":
		for _, a := range strings.Split(*slaves, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
	default:
		fail(fmt.Errorf("need a pool: -slaves addr,addr or -pool N"))
	}

	w := map[string]float64{}
	if *weights != "" {
		for _, kv := range strings.Split(*weights, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				fail(fmt.Errorf("bad -weights entry %q", kv))
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 {
				fail(fmt.Errorf("bad weight %q", kv))
			}
			w[name] = f
		}
	}

	service, err := svc.New(svc.Options{
		Addrs:     addrs,
		MaxQueue:  *maxQueue,
		MaxGroups: *maxGroups,
		Kernel:    *kernel,
		CostModel: *costModel,
		Weights:   w,
		Logf:      logf,
	})
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	fmt.Printf("dlbsvc listening %s\n", ln.Addr())
	hs := &http.Server{Handler: service.Handler()}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-sig
		logf("shutting down (grace %v)", *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		hs.Shutdown(ctx)
		service.Close() // preempts running jobs at their next checkpoint
		for _, srv := range inproc {
			srv.Close()
		}
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		fail(err)
	}
	<-drained // Serve returns as soon as the listener closes; wait out the drain
}
