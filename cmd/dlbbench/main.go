// Command dlbbench regenerates every table and figure of the paper's
// evaluation, plus the ablation experiments, as text tables and CSV.
//
// Usage:
//
//	dlbbench                  # everything, full scale, to stdout
//	dlbbench -exp fig5        # one experiment
//	dlbbench -quick           # reduced problem sizes (same virtual scale)
//	dlbbench -out results/    # write <name>.txt (and fig9.csv) files
//
// Experiments: table1 fig5 fig6 fig7 fig8 fig9 pipeline grain refinements
// lu baselines hetero fault net svc plane kernel scale irregular overlap
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/exp"
	"repro/internal/trace"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dlbbench:", err)
	os.Exit(1)
}

type artifact struct {
	name    string
	content string
	extra   map[string]string // additional files, e.g. CSV
}

func main() {
	which := flag.String("exp", "all", "experiment to run (table1, fig5..fig9, pipeline, grain, refinements, lu, baselines, hetero, fault, net, svc, plane, kernel, scale, irregular, overlap, all)")
	quick := flag.Bool("quick", false, "reduced problem sizes")
	out := flag.String("out", "", "directory to write artifacts to (default: stdout)")
	flag.Parse()

	scale := exp.Full
	if *quick {
		scale = exp.Quick
	}
	want := func(name string) bool {
		return *which == "all" || strings.EqualFold(*which, name)
	}

	var artifacts []artifact
	add := func(name, content string) {
		artifacts = append(artifacts, artifact{name: name, content: content})
	}

	if want("table1") {
		t, err := exp.Table1()
		if err != nil {
			fail(err)
		}
		add("table1", t.String())
	}
	figs := []struct {
		name string
		fn   func(exp.Scale) (*exp.Sweep, error)
	}{
		{"fig5", exp.Fig5},
		{"fig6", exp.Fig6},
		{"fig7", exp.Fig7},
		{"fig8", exp.Fig8},
	}
	for _, f := range figs {
		if !want(f.name) {
			continue
		}
		sw, err := f.fn(scale)
		if err != nil {
			fail(err)
		}
		add(f.name, sw.Render())
	}
	if want("fig9") {
		f, err := exp.Fig9(scale)
		if err != nil {
			fail(err)
		}
		artifacts = append(artifacts, artifact{
			name:    "fig9",
			content: f.Render(),
			extra: map[string]string{
				"fig9.csv": trace.CSV(f.Raw, f.Filtered, f.Work),
			},
		})
	}
	if want("pipeline") {
		rows, err := exp.AblationPipelining(scale)
		if err != nil {
			fail(err)
		}
		add("pipeline", exp.RenderPipelining(rows))
	}
	if want("grain") {
		rows, err := exp.AblationGrain(scale)
		if err != nil {
			fail(err)
		}
		add("grain", exp.RenderGrain(rows))
	}
	if want("refinements") {
		rows, err := exp.AblationRefinements(scale)
		if err != nil {
			fail(err)
		}
		add("refinements", exp.RenderRefinements(rows))
	}
	if want("lu") {
		res, err := exp.AblationLUAdaptive(scale)
		if err != nil {
			fail(err)
		}
		add("lu", res.Render())
	}
	if want("baselines") {
		rows, err := exp.Baselines(scale)
		if err != nil {
			fail(err)
		}
		add("baselines", exp.RenderBaselines(rows))
	}
	if want("hetero") {
		rows, err := exp.Heterogeneous(scale)
		if err != nil {
			fail(err)
		}
		add("hetero", exp.RenderHeterogeneous(rows))
	}
	if want("fault") {
		rows, err := exp.FaultTolerance(scale)
		if err != nil {
			fail(err)
		}
		add("fault", exp.RenderFaultTolerance(rows))
	}
	if want("net") {
		rows, err := exp.NetOverhead(scale)
		if err != nil {
			fail(err)
		}
		add("net", exp.RenderNetOverhead(rows))
	}
	if want("svc") {
		rep, err := exp.SvcSchedule(scale)
		if err != nil {
			fail(err)
		}
		add("svc", exp.RenderSvc(rep))
	}
	if want("plane") {
		rep, err := exp.Plane(scale)
		if err != nil {
			fail(err)
		}
		artifacts = append(artifacts, artifact{
			name:    "plane",
			content: exp.RenderPlane(rep),
			extra: map[string]string{
				"BENCH_plane.json": exp.PlaneJSON(rep),
			},
		})
	}
	if want("scale") {
		rep, err := exp.ScaleSweep(scale)
		if err != nil {
			fail(err)
		}
		artifacts = append(artifacts, artifact{
			name:    "scale",
			content: exp.RenderScale(rep),
			extra: map[string]string{
				"BENCH_scale.json": exp.ScaleJSON(rep),
			},
		})
	}
	if want("irregular") {
		rep, err := exp.Irregular(scale)
		if err != nil {
			fail(err)
		}
		artifacts = append(artifacts, artifact{
			name:    "irregular",
			content: exp.RenderIrregular(rep),
			extra: map[string]string{
				"BENCH_irregular.json": exp.IrregularJSON(rep),
			},
		})
	}
	if want("overlap") {
		rep, err := exp.Overlap(scale)
		if err != nil {
			fail(err)
		}
		artifacts = append(artifacts, artifact{
			name:    "overlap",
			content: exp.RenderOverlap(rep),
			extra: map[string]string{
				"BENCH_overlap.json": exp.OverlapJSON(rep),
			},
		})
	}
	if want("kernel") {
		rep, err := exp.Kernel(scale)
		if err != nil {
			fail(err)
		}
		artifacts = append(artifacts, artifact{
			name:    "kernel",
			content: exp.RenderKernel(rep),
			extra: map[string]string{
				"BENCH_kernel.json": exp.KernelJSON(rep),
			},
		})
	}
	if len(artifacts) == 0 {
		fail(fmt.Errorf("unknown experiment %q", *which))
	}

	if *out == "" {
		for _, a := range artifacts {
			fmt.Println(a.content)
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	for _, a := range artifacts {
		path := filepath.Join(*out, a.name+".txt")
		if err := os.WriteFile(path, []byte(a.content), 0o644); err != nil {
			fail(err)
		}
		fmt.Println("wrote", path)
		for name, content := range a.extra {
			p := filepath.Join(*out, name)
			if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
				fail(err)
			}
			fmt.Println("wrote", p)
		}
	}
}
