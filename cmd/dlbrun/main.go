// Command dlbrun executes one application on a simulated workstation
// cluster and reports timing, speedup, efficiency, and (optionally) the
// load-balancing trace.
//
// Usage:
//
//	dlbrun -prog mm -n 192 -slaves 4 -load const:1 [-nodlb] [-sync] [-trace]
//	dlbrun -prog mm -n 256 -slaves 127.0.0.1:7101,127.0.0.1:7102   # distributed
//
// -slaves takes either a count (simulated cluster or, with -real, goroutine
// workers) or a comma-separated list of dlbd daemon addresses, which runs
// the master over real TCP against separate slave processes (see cmd/dlbd).
//
// Load scenarios: none | const:<tasks> | wave:<periodSec>:<onSec>:<tasks>
// (applied to slave 0; other slaves stay dedicated).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/dlb"
	"repro/internal/fault"
	"repro/internal/lang"
	"repro/internal/loopir"
	"repro/internal/metrics"
	"repro/internal/netrun"
	"repro/internal/trace"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dlbrun:", err)
	os.Exit(1)
}

func parseLoad(s string) (cluster.LoadProfile, error) {
	switch {
	case s == "" || s == "none":
		return cluster.NoLoad{}, nil
	case strings.HasPrefix(s, "const:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "const:"))
		if err != nil {
			return nil, err
		}
		return cluster.Constant(n), nil
	case strings.HasPrefix(s, "wave:"):
		parts := strings.Split(strings.TrimPrefix(s, "wave:"), ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("wave load needs period:on:tasks")
		}
		period, err1 := strconv.ParseFloat(parts[0], 64)
		on, err2 := strconv.ParseFloat(parts[1], 64)
		tasks, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("bad wave load %q", s)
		}
		return cluster.SquareWave{
			Period:     time.Duration(period * float64(time.Second)),
			OnDuration: time.Duration(on * float64(time.Second)),
			Tasks:      tasks,
		}, nil
	}
	return nil, fmt.Errorf("unknown load %q", s)
}

func main() {
	progName := flag.String("prog", "mm", "program: mm, sor, lu, jacobi, axpy, periodic-sor, spmv, pbin")
	file := flag.String("file", "", "run a source file instead of a library program")
	distFlag := flag.String("dist", "", "distribution directive array:dim[,array:dim] (for -file; default: automatic)")
	n := flag.Int("n", 128, "problem size")
	maxiter := flag.Int("maxiter", 12, "outer iterations (sor, jacobi, axpy)")
	slavesFlag := flag.String("slaves", "4", "slave count, or comma-separated dlbd addresses for a distributed TCP run")
	listen := flag.String("listen", "127.0.0.1:0", "distributed runs: master join/reconnect listener address")
	extra := flag.Int("extra", 0, "distributed runs: joiner slots beyond the initial membership")
	loadSpec := flag.String("load", "none", "competing load on slave 0: none | const:N | wave:period:on:N")
	nodlb := flag.Bool("nodlb", false, "disable dynamic load balancing (static distribution)")
	sync := flag.Bool("sync", false, "synchronous master interactions instead of pipelined")
	showTrace := flag.Bool("trace", false, "print the per-phase balancing trace for slave 0")
	showStats := flag.Bool("stats", false, "print the engine's event counters")
	flopCost := flag.Duration("flopcost", time.Microsecond, "virtual CPU time per flop (1µs ≈ Sun 4/330)")
	real := flag.Bool("real", false, "run for real: wall-clock goroutines instead of the simulated cluster")
	cores := flag.Int("cores", 0, "kernel worker goroutines per slave (0/1: sequential, -1: all hardware cores)")
	kernel := flag.String("kernel", "", `execution tier for distributed-loop bodies: "interp", "kernel" (default) or "aot"`)
	costModel := flag.String("costmodel", "", `balancer's view of work units: "uniform" (default) or "learned" (per-unit costs measured online)`)
	overlap := flag.Bool("overlap", true, "overlap eligible ghost exchanges with interior computation (-overlap=false forces synchronous exchanges)")
	groups := flag.Int("groups", 0, "hierarchical balancing: partition slaves into this many leader-led groups (0/1: flat)")
	groupEvery := flag.Int("group-every", 0, "inter-group diffusive exchange cadence in balancing rounds (0: default 4)")
	groupAlpha := flag.Float64("group-alpha", 0, "diffusion under-relaxation factor in (0,1] (0: default 0.5)")
	reportCost := flag.Duration("report-cost", 0, "per-report CPU charge on whoever collects a status (master, or group leaders)")
	drag := flag.Float64("drag", 1.0, "with -real: slow slave 0 by this factor (emulated loaded machine)")
	faultSpec := flag.String("fault", "", "fault plan: crash:S@T | stall:S@T:D | drop:S@T:D | join@T (comma-separated; seconds)")
	lease := flag.Duration("lease", 0, "failure-detection lease floor (with -fault; 0: default)")
	hbEvery := flag.Duration("hb", 0, "heartbeat interval (with -fault; 0: default)")
	ckptMin := flag.Duration("ckpt-min", 0, "minimum checkpoint interval (with -fault; 0: default)")
	ckptMax := flag.Duration("ckpt-max", 0, "maximum checkpoint interval (with -fault; 0: default)")
	ckptOff := flag.Bool("ckpt-off", false, "disable periodic checkpoints (recovery restarts from the initial distribution)")
	flag.Parse()

	// -slaves is a count, or a host:port list selecting the TCP runtime.
	var netAddrs []string
	slaves := 0
	if strings.Contains(*slavesFlag, ":") {
		netAddrs = strings.Split(*slavesFlag, ",")
		slaves = len(netAddrs)
	} else {
		var err error
		if slaves, err = strconv.Atoi(*slavesFlag); err != nil {
			fail(fmt.Errorf("bad -slaves %q: count or host:port,... expected", *slavesFlag))
		}
	}

	var prog *loopir.Program
	var spec depend.DistSpec
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		prog, err = lang.Parse(string(src))
		if err != nil {
			fail(fmt.Errorf("%s:%w", *file, err))
		}
		if *distFlag != "" {
			spec.Dims = map[string]int{}
			for _, part := range strings.Split(*distFlag, ",") {
				kv := strings.SplitN(part, ":", 2)
				if len(kv) != 2 {
					fail(fmt.Errorf("bad -dist entry %q", part))
				}
				dim, err := strconv.Atoi(kv[1])
				if err != nil {
					fail(fmt.Errorf("bad -dist dimension in %q", part))
				}
				spec.Dims[kv[0]] = dim
			}
		}
	} else {
		prog = loopir.Library()[*progName]
		if prog == nil {
			fail(fmt.Errorf("unknown program %q", *progName))
		}
		specs := map[string]depend.DistSpec{
			"mm":           {Dims: map[string]int{"c": 1, "b": 1}, Loops: []string{"j"}},
			"sor":          {Dims: map[string]int{"b": 0}, Loops: []string{"j"}},
			"lu":           {Dims: map[string]int{"a": 1}, Loops: []string{"j"}},
			"jacobi":       {Dims: map[string]int{"a": 0, "anew": 0}, Loops: []string{"i", "i2"}},
			"axpy":         {Dims: map[string]int{"x": 0, "y": 0}, Loops: []string{"i"}},
			"periodic-sor": {Dims: map[string]int{"b": 0}, Loops: []string{"j"}},
		}
		spec = specs[*progName]
	}
	params := map[string]int{}
	for _, prm := range prog.Params {
		if strings.Contains(prm, "iter") {
			params[prm] = *maxiter
		} else {
			params[prm] = *n
		}
	}
	plan, err := compile.Compile(prog, compile.Options{Dist: spec})
	if err != nil {
		fail(err)
	}
	load, err := parseLoad(*loadSpec)
	if err != nil {
		fail(err)
	}

	cfg := dlb.Config{
		Plan:               plan,
		Params:             params,
		DLB:                !*nodlb,
		Synchronous:        *sync,
		FlopCost:           *flopCost,
		Cores:              *cores,
		Kernel:             *kernel,
		CostModel:          *costModel,
		Groups:             *groups,
		GroupExchangeEvery: *groupEvery,
		GroupDiffusion:     *groupAlpha,
		PerReportCost:      *reportCost,
		CollectTrace:       *showTrace,
	}
	if !*overlap {
		cfg.Overlap = dlb.OverlapDisabled
	}
	if *faultSpec != "" {
		fp, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fail(err)
		}
		cfg.Fault = fp
		cfg.Detect = fault.DetectorConfig{MinLease: *lease, HeartbeatEvery: *hbEvery}
		cfg.Ckpt = fault.CkptPolicy{MinInterval: *ckptMin, MaxInterval: *ckptMax, Disable: *ckptOff}
	}
	var res *dlb.Result
	switch {
	case netAddrs != nil:
		res, err = netrun.RunMaster(cfg, netAddrs, netrun.MasterOptions{
			Listen:     *listen,
			ExtraSlots: *extra,
			Logf: func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, "dlbrun: "+format+"\n", args...)
			},
		})
	case *real:
		if *drag > 1 {
			cfg.RealDrag = []float64{*drag}
		}
		res, err = dlb.RunReal(cfg, slaves)
	default:
		cc := cluster.Config{Slaves: slaves, Load: []cluster.LoadProfile{load}}
		res, err = dlb.Run(cfg, cc)
	}
	if err != nil {
		fail(err)
	}
	if res.AotInfo != nil {
		// One line per run so harnesses can assert the cache went warm.
		fmt.Fprintf(os.Stderr, "dlbrun: %s\n", res.AotInfo)
	}
	seq, ref, err := dlb.SequentialTime(plan, params, *flopCost)
	if err != nil {
		fail(err)
	}
	wall := *real || netAddrs != nil
	if wall {
		// In real and distributed modes the baseline is a timed sequential
		// run, not the calibrated virtual one.
		inst, err := loopir.NewInstance(plan.Prog, params)
		if err != nil {
			fail(err)
		}
		t0 := time.Now()
		if err := inst.Run(); err != nil {
			fail(err)
		}
		seq = time.Since(t0)
		ref = inst.Arrays
	}

	worst := 0.0
	for name, want := range ref {
		if got := res.Final[name]; got != nil {
			if d := want.MaxAbsDiff(got); d > worst {
				worst = d
			}
		}
	}

	kind := "simulated workstations"
	switch {
	case netAddrs != nil:
		kind = "slave processes over TCP (wall clock)"
	case *real:
		kind = "real goroutine workers (wall clock)"
	}
	fmt.Printf("%s n=%d on %d %s (load %s, dlb=%v)\n",
		prog.Name, *n, slaves, kind, *loadSpec, !*nodlb)
	unit := "virtual"
	if wall {
		unit = "wall"
	}
	fmt.Printf("  sequential (%s):  %8.2fs\n", unit, seq.Seconds())
	fmt.Printf("  parallel   (%s):  %8.2fs\n", unit, res.Elapsed.Seconds())
	fmt.Printf("  speedup:               %8.2f\n", metrics.Speedup(seq, res.Elapsed))
	if netAddrs == nil {
		// Per-slave busy time is process-local in the distributed runtime;
		// the master cannot aggregate it, so no efficiency figure there.
		fmt.Printf("  efficiency:            %8.3f\n", metrics.Efficiency(seq, res.Elapsed, res.Usage))
	}
	fmt.Printf("  LB phases: %d, moves: %d (%d units), strip grain: %d\n",
		res.Phases, res.Moves, res.UnitsMoved, res.Grain)
	fmt.Printf("  result vs sequential reference: max |diff| = %g\n", worst)
	if cfg.Fault != nil {
		fmt.Printf("  fault handling: %d recoveries, %d checkpoints, evicted %v, joined %v\n",
			res.Recoveries, res.Checkpoints, res.Evicted, res.Joined)
		if res.FaultLog != nil && len(res.FaultLog.Events) > 0 {
			fmt.Print(res.FaultLog)
		}
	}

	if *showStats && res.Counters != nil {
		fmt.Println()
		fmt.Print(res.Counters.Table("engine counters"))
	}
	if *showStats && len(res.Loads) > 0 {
		// Average imbalance factor: max/mean weighted per-slave backlog,
		// averaged over the balancing rounds. 1.0 is a perfect spread.
		sum := 0.0
		for _, l := range res.Loads {
			sum += l.Max / l.Mean
		}
		fmt.Printf("  weighted imbalance: avg max/mean %.3f over %d rounds\n",
			sum/float64(len(res.Loads)), len(res.Loads))
	}

	if *showTrace && len(res.Trace) > 0 {
		raw, filt, work := res.Series(0)
		maxRate := raw.Max()
		if maxRate == 0 {
			maxRate = 1
		}
		even := float64(res.Exec.Units) / float64(slaves)
		fmt.Println()
		fmt.Print(trace.PlotASCII(72, 14,
			raw.Normalized(maxRate), filt.Normalized(maxRate), work.Normalized(even)))
	}
}
